//! Sectored cache model with pluggable replacement, backed by a flat tag
//! store.
//!
//! This is the structure whose performance cliffs every MT4G benchmark
//! exploits:
//!
//! * **capacity**: a p-chase array larger than the cache evicts itself
//!   between the warm-up and the timed pass (size benchmark),
//! * **sectors**: a line is fetched one *fetch-granularity* sector at a
//!   time, so touching an unfetched sector of a present line still misses
//!   (fetch-granularity benchmark),
//! * **line granularity**: strides above the line size touch fewer lines
//!   than the capacity, turning the post-capacity miss plateau back into
//!   hits (cache-line-size benchmark),
//! * **sharing**: two actors filling the *same* physical instance evict
//!   each other; actors on distinct instances do not (amount / physical
//!   sharing benchmarks).
//!
//! Two organisations are provided. The **fully associative** one (what the
//! device presets use) produces the textbook sharp capacity cliff: a
//! cyclically-chased array one line larger than the cache misses on *every*
//! access. The **set-associative** one reproduces the paper's Fig. 1
//! boundary behaviour, where sizes just past the capacity see a *mix* of
//! hits and misses because only the overflowing sets thrash.
//!
//! # Replacement policies
//!
//! Eviction is a per-level strategy ([`ReplacementPolicy`], see
//! [`mod@policy`]): exact true-LRU (the default, and the behaviour of the
//! historical engine), tree-PLRU, segmented LRU, seeded random, and a
//! streaming/bypass mode. The policy is chosen at construction
//! ([`SectoredCache::new_with_policy`]); [`SectoredCache::new`] keeps the
//! LRU default so every pre-existing caller and report is untouched.
//!
//! # The flat tag store
//!
//! All organisations live in contiguous storage with no per-access
//! allocation — this is the simulation's hottest loop (millions of
//! pointer-chase loads per discovery), so the data layout matters:
//!
//! * **Set-associative** ([`SetAssoc`]): structure-of-arrays `tags` /
//!   `sectors` vectors laid out as `num_sets × ways` way-groups, so the
//!   hot lookup scans a cache-friendly run of bare `u64` tags. The set
//!   index is a bitmask when the set count is a power of two and a
//!   division-free multiply-high reduction otherwise. Recency is *packed*
//!   per set: true-LRU keeps one `u64` of per-way age bytes per set
//!   (promoted/selected with word-wide SWAR ops, no timestamp scan) for
//!   up to 8 ways and falls back to a timestamp scan above that;
//!   tree-PLRU keeps one bit per internal tree node.
//! * **Fully associative**: an open-addressed index ([`LineIndex`]:
//!   linear probing, backward-shift deletion, deterministic splitmix64
//!   hashing) mapping line addresses to a slot arena. The LRU engine
//!   ([`FlatLru`]) threads the arena with an intrusive recency list —
//!   O(1) lookup, O(1) true-LRU eviction; non-LRU policies use the same
//!   index + arena with per-policy recency state ([`FaPolicyStore`]).
//!   The arena grows lazily up to the line capacity, so huge caches
//!   (e.g. a 256 MiB L3) cost memory proportional to their *resident*
//!   lines, and eviction recycles slots in place.
//!
//! The retained [`mod@reference`] implementations plus the differential
//! property tests in `crates/sim/tests/prop.rs` pin every engine to the
//! naive per-policy oracle behaviour access-for-access.

pub mod policy;
pub mod reference;

pub use policy::ReplacementPolicy;

use crate::device::CacheSpec;
use policy::Xorshift64;

/// Associativity value that requests the fully-associative organisation.
pub const FULLY_ASSOCIATIVE: u32 = u32::MAX;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present and the requested sector is valid.
    Hit,
    /// Line present but the requested sector has not been fetched yet.
    SectorMiss,
    /// Line absent entirely.
    LineMiss,
}

impl Access {
    /// Whether the access was served by this cache level.
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

/// Tag value marking an empty set-associative way. No reachable byte
/// address maps to this line address (it would need 1-byte lines at the
/// very top of the address space), so resident tags never collide with it.
const EMPTY_TAG: u64 = u64::MAX;

/// Sentinel for "no slot" in the open-addressed index and recency links.
const NIL: u32 = u32::MAX;

/// A fully-associative slot: the packed tag triple plus intrusive list
/// links (`prev` towards LRU, `next` towards MRU for the LRU engine;
/// segment-list links for SLRU; unused by random/bypass).
#[derive(Debug, Clone, Copy)]
struct FaSlot {
    tag: u64,
    valid_sectors: u64,
    last_use: u64,
    prev: u32,
    next: u32,
}

/// Deterministic 64-bit finalizer (splitmix64) — the probe start of a line
/// address. Seedless on purpose: the simulation must be bit-reproducible.
#[inline]
fn hash_line(line_addr: u64) -> u64 {
    let mut z = line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Open-addressed line-address → arena-slot index (linear probing,
/// backward-shift deletion). Shared by every fully-associative engine;
/// the slot arena itself lives with the caller so the index stays policy
/// agnostic.
#[derive(Debug)]
struct LineIndex {
    /// Open-addressed table of arena indices (`NIL` = empty bucket).
    table: Vec<u32>,
    /// `table.len() - 1`; the table length is always a power of two.
    mask: u64,
}

impl LineIndex {
    fn new() -> Self {
        LineIndex {
            table: vec![NIL; 64],
            mask: 63,
        }
    }

    /// Probe-finds the arena index of `line_addr`, if resident.
    #[inline]
    fn find(&self, slots: &[FaSlot], line_addr: u64) -> Option<u32> {
        let mut pos = hash_line(line_addr) & self.mask;
        loop {
            let slot = self.table[pos as usize];
            if slot == NIL {
                return None;
            }
            if slots[slot as usize].tag == line_addr {
                return Some(slot);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Inserts `line_addr -> slot` (caller guarantees the key is absent
    /// and the table has a free bucket).
    #[inline]
    fn insert(&mut self, line_addr: u64, slot: u32) {
        let mut pos = hash_line(line_addr) & self.mask;
        while self.table[pos as usize] != NIL {
            pos = (pos + 1) & self.mask;
        }
        self.table[pos as usize] = slot;
    }

    /// Removes `line_addr` from the index with backward-shift deletion, so
    /// probe chains stay gap-free without tombstones.
    fn remove(&mut self, slots: &[FaSlot], line_addr: u64) {
        let mask = self.mask;
        let mut pos = hash_line(line_addr) & mask;
        while {
            let slot = self.table[pos as usize];
            debug_assert_ne!(slot, NIL, "removing a key that is not present");
            slots[slot as usize].tag != line_addr
        } {
            pos = (pos + 1) & mask;
        }
        // `pos` holds the doomed entry; shift later chain members back.
        let mut hole = pos;
        let mut probe = pos;
        loop {
            probe = (probe + 1) & mask;
            let slot = self.table[probe as usize];
            if slot == NIL {
                break;
            }
            let home = hash_line(slots[slot as usize].tag) & mask;
            // The entry can fill the hole iff the hole lies on its probe
            // path, i.e. dist(home, hole) <= dist(home, probe).
            let dist_hole = hole.wrapping_sub(home) & mask;
            let dist_probe = probe.wrapping_sub(home) & mask;
            if dist_hole <= dist_probe {
                self.table[hole as usize] = slot;
                hole = probe;
            }
        }
        self.table[hole as usize] = NIL;
    }

    /// Doubles the table when it is half full, rehashing every resident
    /// slot. Amortised and rare; the steady state allocates nothing per
    /// access.
    fn maybe_grow(&mut self, slots: &[FaSlot]) {
        if (slots.len() as u64 + 1) * 2 <= self.table.len() as u64 {
            return;
        }
        let new_len = (self.table.len() * 2).max(64);
        self.table = vec![NIL; new_len];
        self.mask = new_len as u64 - 1;
        for (i, s) in slots.iter().enumerate() {
            let mut pos = hash_line(s.tag) & self.mask;
            while self.table[pos as usize] != NIL {
                pos = (pos + 1) & self.mask;
            }
            self.table[pos as usize] = i as u32;
        }
    }

    fn clear(&mut self) {
        self.table.iter_mut().for_each(|b| *b = NIL);
    }
}

/// Fully-associative true-LRU engine: [`LineIndex`] + slot arena threaded
/// with an intrusive doubly-linked recency list.
#[derive(Debug)]
struct FlatLru {
    capacity_lines: u64,
    index: LineIndex,
    /// Slot arena; grows lazily to `capacity_lines`, then recycles.
    slots: Vec<FaSlot>,
    /// Least-recently-used slot (eviction victim), `NIL` when empty.
    head: u32,
    /// Most-recently-used slot, `NIL` when empty.
    tail: u32,
    /// MRU line filter, mirroring [`SetAssoc`]'s: the line address and
    /// arena slot of the last access. A repeat access to the MRU line is
    /// already at the recency tail, so the hash probe and list surgery
    /// can be skipped entirely — the common case for sector-sequential
    /// chase patterns, which touch every line `sectors_per_line` times in
    /// a row. The slot's own tag is re-verified, so a recycled slot falls
    /// through to the full path. `EMPTY_TAG` = invalid.
    mru_line: u64,
    mru_slot: u32,
}

impl FlatLru {
    fn new(capacity_lines: u64) -> Self {
        FlatLru {
            capacity_lines,
            index: LineIndex::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            mru_line: EMPTY_TAG,
            mru_slot: 0,
        }
    }

    /// One access: MRU-line fast path, then the full probe path.
    ///
    /// The fast path is a recency no-op by construction — `mru_line` is
    /// only ever the line of the immediately preceding access, whose slot
    /// `access_cold` left at the recency tail; `touch` on the tail slot
    /// changes nothing but `last_use`, which is all the fast path writes.
    #[inline]
    fn access(&mut self, line_addr: u64, sector_bit: u64, tick: u64) -> Access {
        if line_addr == self.mru_line {
            if let Some(s) = self.slots.get_mut(self.mru_slot as usize) {
                if s.tag == line_addr {
                    s.last_use = tick;
                    let had = s.valid_sectors & sector_bit != 0;
                    s.valid_sectors |= sector_bit;
                    return if had { Access::Hit } else { Access::SectorMiss };
                }
            }
        }
        self.access_cold(line_addr, sector_bit, tick)
    }

    /// The full probe path: hash lookup, recency promotion, allocation.
    fn access_cold(&mut self, line_addr: u64, sector_bit: u64, tick: u64) -> Access {
        let result = if let Some(slot) = self.find(line_addr) {
            self.touch(slot, tick);
            self.mru_slot = slot;
            let s = &mut self.slots[slot as usize];
            if s.valid_sectors & sector_bit != 0 {
                Access::Hit
            } else {
                s.valid_sectors |= sector_bit;
                Access::SectorMiss
            }
        } else {
            self.mru_slot = self.allocate(line_addr, sector_bit, tick);
            Access::LineMiss
        };
        self.mru_line = line_addr;
        result
    }

    #[inline]
    fn find(&self, line_addr: u64) -> Option<u32> {
        self.index.find(&self.slots, line_addr)
    }

    /// Unlinks `slot` from the recency list.
    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Appends `slot` at the MRU end of the recency list.
    #[inline]
    fn push_tail(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.prev = self.tail;
        s.next = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.slots[self.tail as usize].next = slot;
        }
        self.tail = slot;
    }

    #[inline]
    fn touch(&mut self, slot: u32, tick: u64) {
        if self.tail != slot {
            self.unlink(slot);
            self.push_tail(slot);
        }
        self.slots[slot as usize].last_use = tick;
    }

    /// Allocates a slot for a new line: recycles the LRU victim when full,
    /// otherwise grows the arena. Returns the arena index.
    fn allocate(&mut self, line_addr: u64, sector_bit: u64, tick: u64) -> u32 {
        let slot = if (self.slots.len() as u64) < self.capacity_lines {
            self.index.maybe_grow(&self.slots);
            let idx = self.slots.len() as u32;
            self.slots.push(FaSlot {
                tag: line_addr,
                valid_sectors: sector_bit,
                last_use: tick,
                prev: NIL,
                next: NIL,
            });
            idx
        } else {
            let victim = self.head;
            debug_assert_ne!(victim, NIL, "full cache implies an LRU victim");
            let victim_tag = self.slots[victim as usize].tag;
            self.index.remove(&self.slots, victim_tag);
            self.unlink(victim);
            let s = &mut self.slots[victim as usize];
            s.tag = line_addr;
            s.valid_sectors = sector_bit;
            s.last_use = tick;
            victim
        };
        self.index.insert(line_addr, slot);
        self.push_tail(slot);
        slot
    }

    fn flush(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
        self.mru_line = EMPTY_TAG;
    }
}

// --- packed per-set recency (the SWAR age vector and the PLRU tree) ---

/// Per-byte broadcast and high-bit masks for the 8-lane age vector.
const LANES_LO: u64 = 0x0101_0101_0101_0101;
const LANES_HI: u64 = 0x8080_8080_8080_8080;

/// One SWAR step over a packed age word (one byte per way, `0` = MRU,
/// `0xFF` = empty/padding lane): ages every lane whose value is `<= k_le`
/// by one, then clears `lane` to 0 (the new MRU).
///
/// Lane-wise, `(0x80 + k_le) - (age & 0x7F)` has bit 7 set exactly when
/// `age <= k_le`; empty `0xFF` lanes mask to `0x7F`, which always exceeds
/// `k_le <= 7`, so they are never aged. The per-lane minuend (`>= 0x80`)
/// always exceeds the subtrahend (`<= 0x7F`), so no borrow crosses lanes.
#[inline]
fn age_promote(ages: u64, lane: u32, k_le: u64) -> u64 {
    debug_assert!(k_le <= 7);
    let t = ((k_le * LANES_LO) | LANES_HI).wrapping_sub(ages & !LANES_HI);
    let bumped = ages.wrapping_add((t & LANES_HI) >> 7);
    bumped & !(0xFFu64 << (lane * 8))
}

/// Number of occupied lanes in a packed age word. Valid ages are `<= 7`,
/// so a set high bit identifies exactly the `0xFF` empty/padding lanes.
#[inline]
fn age_filled(ages: u64) -> u64 {
    8 - (ages & LANES_HI).count_ones() as u64
}

/// Index of the lane holding age `ways - 1` (the LRU victim) in a full
/// packed age word. XOR turns the victim byte into `0x00`; the classic
/// zero-byte detect then flags it. A false positive needs a borrow from a
/// *lower* zero byte, so the lowest flagged byte is always the true zero,
/// and `0xFF` padding lanes (`0xFF ^ k >= 0xF8`) never flag.
#[inline]
fn age_victim(ages: u64, ways: u32) -> u32 {
    let t = ages ^ ((ways as u64 - 1) * LANES_LO);
    let z = t.wrapping_sub(LANES_LO) & !t & LANES_HI;
    debug_assert_ne!(z, 0, "full set must contain age ways-1");
    z.trailing_zeros() / 8
}

/// Points every ancestor of `way`'s leaf away from it (a PLRU touch).
/// `bits` holds one bit per internal node of the heap-numbered tree over
/// `padded` leaves (node `n`'s bit at index `n - 1`; bit set = "victim
/// walk goes right").
#[inline]
fn plru_touch(bits: &mut [u64], padded: u64, way: u64) {
    let mut node = padded + way;
    while node > 1 {
        let parent = node >> 1;
        let idx = (parent - 1) as usize;
        let bit = 1u64 << (idx & 63);
        if node & 1 == 0 {
            bits[idx >> 6] |= bit; // touched the left child: point right
        } else {
            bits[idx >> 6] &= !bit; // touched the right child: point left
        }
        node = parent;
    }
}

/// Walks the PLRU pointer bits down to the victim leaf. Leaves
/// `valid..padded` do not exist (non-power-of-two way counts); the walk
/// only descends right when the right subtree contains a valid leaf —
/// sound because fills occupy ways densely from 0.
#[inline]
fn plru_victim(bits: &[u64], padded: u64, valid: u64) -> u64 {
    let mut node = 1u64;
    let mut lo = 0u64;
    let mut span = padded;
    while span > 1 {
        span >>= 1;
        let idx = (node - 1) as usize;
        let right = (bits[idx >> 6] >> (idx & 63)) & 1 == 1 && lo + span < valid;
        node = (node << 1) | right as u64;
        if right {
            lo += span;
        }
    }
    lo
}

/// Division-free `line % d` for non-power-of-two `d`: multiply-high
/// against `magic = floor(u64::MAX / d)`. The quotient estimate is at
/// most 2 below the true one, fixed up by two branch-free conditional
/// subtracts (a data-dependent fixup *loop* would mispredict on the hot
/// path).
#[inline]
fn fastmod(line: u64, magic: u64, d: u64) -> u64 {
    let q = ((line as u128 * magic as u128) >> 64) as u64;
    let mut r = line - q.wrapping_mul(d);
    r -= d * ((r >= d) as u64);
    r -= d * ((r >= d) as u64);
    debug_assert!(r < d);
    r
}

/// Bit-words needed for the internal nodes of a PLRU tree over `padded`
/// leaves (zero for a 1-leaf tree, which has no internal nodes).
#[inline]
fn plru_words(padded: u64) -> usize {
    ((padded - 1) as usize).div_ceil(64)
}

// --- the set-associative organisation ---

/// Per-policy recency state of [`SetAssoc`]. The LRU default packs one
/// `u64` age vector per set when the way count allows it and falls back
/// to the historical timestamp scan above 8 ways; both are exact
/// true-LRU, so the choice is invisible to behaviour.
#[derive(Debug)]
enum SaState {
    /// Exact LRU, `ways <= 8`: one packed age word per set.
    AgePacked { ages: Vec<u64> },
    /// Exact LRU, `ways > 8`: per-way timestamps, victim = min scan.
    AgeStamp { stamps: Vec<u64> },
    /// Tree-PLRU: per-set internal-node bits over `padded` leaves.
    Plru {
        bits: Vec<u64>,
        padded: u64,
        words: usize,
    },
    /// Segmented LRU: per-way timestamps + per-set protected bitmask.
    Slru {
        stamps: Vec<u64>,
        protected: Vec<u64>,
        prot_cap: u32,
    },
    /// Seeded uniform-random victim (one stream per cache instance).
    Random(Xorshift64),
    /// Streaming: never evicts; full sets stop allocating.
    Bypass,
}

/// Set-associative organisation: structure-of-arrays tag store plus the
/// packed per-set recency state (see module docs).
#[derive(Debug)]
struct SetAssoc {
    /// Way slots. With `pack_shift = Some(spl)` — `spl` the
    /// sectors-per-line count, taken whenever it is `<= 16` (every
    /// modeled geometry) — each way is a single word, `tag << spl |
    /// valid-sector bitmap`, so a 4-way set spans 32 bytes and the tag
    /// scan, sector test and line fill each touch one word. All-ones
    /// (`EMPTY_TAG`) marks an empty way: a real slot with every sector
    /// valid never has the all-ones *tag*, which sits above the
    /// reachable address space. Geometries with more than 16 sectors
    /// per line fall back to interleaved (tag, bitmap) pairs at lane
    /// stride 2.
    lanes: Vec<u64>,
    /// `Some(sectors_per_line)` for the packed single-word layout.
    pack_shift: Option<u32>,
    /// MRU line filter (a way-predictor analogue) for the packed
    /// exact-LRU configuration: the line address and lane index of the
    /// last hit or fill. A repeat access to the MRU line leaves every
    /// recency bit unchanged under exact LRU (its age is already 0), so
    /// the set indexing and way scan are skipped entirely — the common
    /// case for sector-sequential p-chase patterns. `EMPTY_TAG` =
    /// invalid.
    mru_line: u64,
    mru_lane: u32,
    num_sets: u64,
    /// `Some(num_sets - 1)` when the set count is a power of two.
    set_mask: Option<u64>,
    /// `floor(u64::MAX / num_sets)` for the division-free reduction on
    /// non-power-of-two set counts.
    mod_magic: u64,
    ways: u32,
    state: SaState,
}

impl SetAssoc {
    fn new(total_lines: u64, ways: u32, sectors_per_line: u32, policy: ReplacementPolicy) -> Self {
        debug_assert!(ways as u64 > 0 && total_lines.is_multiple_of(ways as u64));
        let num_sets = total_lines / ways as u64;
        let state = match policy {
            ReplacementPolicy::Lru if ways <= 8 => SaState::AgePacked {
                ages: vec![u64::MAX; num_sets as usize],
            },
            ReplacementPolicy::Lru => SaState::AgeStamp {
                stamps: vec![0; total_lines as usize],
            },
            ReplacementPolicy::TreePlru => {
                let padded = (ways as u64).next_power_of_two();
                let words = plru_words(padded);
                SaState::Plru {
                    bits: vec![0; num_sets as usize * words],
                    padded,
                    words,
                }
            }
            ReplacementPolicy::Slru => {
                assert!(
                    ways <= 64,
                    "SLRU supports at most 64 ways (per-set protected bitmask)"
                );
                SaState::Slru {
                    stamps: vec![0; total_lines as usize],
                    protected: vec![0; num_sets as usize],
                    prot_cap: ways / 2,
                }
            }
            ReplacementPolicy::Random => SaState::Random(Xorshift64::for_geometry(total_lines)),
            ReplacementPolicy::Bypass => SaState::Bypass,
        };
        let (lanes, pack_shift) = if sectors_per_line <= 16 {
            (
                vec![EMPTY_TAG; total_lines as usize],
                Some(sectors_per_line),
            )
        } else {
            let mut lanes = vec![0u64; 2 * total_lines as usize];
            lanes.iter_mut().step_by(2).for_each(|t| *t = EMPTY_TAG);
            (lanes, None)
        };
        SetAssoc {
            lanes,
            pack_shift,
            mru_line: EMPTY_TAG,
            mru_lane: 0,
            num_sets,
            set_mask: num_sets.is_power_of_two().then(|| num_sets - 1),
            mod_magic: u64::MAX / num_sets,
            ways,
            state,
        }
    }

    /// Maps a line address to its set.
    #[inline]
    fn set_of(&self, line_addr: u64) -> u64 {
        match self.set_mask {
            Some(mask) => line_addr & mask,
            None => fastmod(line_addr, self.mod_magic, self.num_sets),
        }
    }

    /// Recency update for a lookup that found the line in `way`.
    #[inline]
    fn touch(&mut self, set: u64, base: usize, way: usize, tick: u64) {
        match &mut self.state {
            SaState::AgePacked { ages } => {
                let w = &mut ages[set as usize];
                let age = (*w >> (way * 8)) & 0xFF;
                if age != 0 {
                    *w = age_promote(*w, way as u32, age - 1);
                }
            }
            SaState::AgeStamp { stamps } => stamps[base + way] = tick,
            SaState::Plru {
                bits,
                padded,
                words,
            } => {
                let bits = &mut bits[set as usize * *words..(set as usize + 1) * *words];
                plru_touch(bits, *padded, way as u64);
            }
            SaState::Slru {
                stamps,
                protected,
                prot_cap,
            } => {
                let prot = &mut protected[set as usize];
                let in_prot = (*prot >> way) & 1 == 1;
                stamps[base + way] = tick;
                if !in_prot && *prot_cap > 0 {
                    // Promote to protected; on overflow demote the
                    // protected-LRU back to probation as its MRU.
                    *prot |= 1 << way;
                    if prot.count_ones() > *prot_cap {
                        let mask = *prot;
                        let mut demote = 0usize;
                        let mut oldest = u64::MAX;
                        for w in 0..self.ways as usize {
                            if (mask >> w) & 1 == 1 && stamps[base + w] < oldest {
                                oldest = stamps[base + w];
                                demote = w;
                            }
                        }
                        *prot &= !(1 << demote);
                        stamps[base + demote] = tick;
                    }
                }
            }
            SaState::Random(_) | SaState::Bypass => {}
        }
    }

    /// Victim way for a full set, or `None` to skip allocation (bypass).
    #[inline]
    fn victim(&mut self, set: u64, base: usize) -> Option<usize> {
        let ways = self.ways as usize;
        match &mut self.state {
            SaState::AgePacked { ages } => Some(age_victim(ages[set as usize], self.ways) as usize),
            SaState::AgeStamp { stamps } => {
                let group = &stamps[base..base + ways];
                let mut dst = 0usize;
                let mut dst_use = u64::MAX;
                for (i, &stamp) in group.iter().enumerate() {
                    if stamp < dst_use {
                        dst_use = stamp;
                        dst = i;
                    }
                }
                Some(dst)
            }
            SaState::Plru {
                bits,
                padded,
                words,
            } => {
                let bits = &bits[set as usize * *words..(set as usize + 1) * *words];
                Some(plru_victim(bits, *padded, self.ways as u64) as usize)
            }
            SaState::Slru {
                stamps, protected, ..
            } => {
                // Probation first; it is never empty on a full set since
                // the protected segment is capped at half the ways.
                let prot = protected[set as usize];
                let mut dst = None;
                let mut dst_use = u64::MAX;
                for w in 0..ways {
                    if (prot >> w) & 1 == 0 && stamps[base + w] < dst_use {
                        dst_use = stamps[base + w];
                        dst = Some(w);
                    }
                }
                dst.or_else(|| {
                    let mut dst = 0usize;
                    let mut dst_use = u64::MAX;
                    for w in 0..ways {
                        if stamps[base + w] < dst_use {
                            dst_use = stamps[base + w];
                            dst = w;
                        }
                    }
                    Some(dst)
                })
            }
            SaState::Random(rng) => Some(rng.below(ways as u64) as usize),
            SaState::Bypass => None,
        }
    }

    /// Recency update for a line filled into `way` (free fill or after an
    /// eviction). Free fills always land on way `filled` because ways
    /// occupy densely from 0 (fills are sequential, evictions replace in
    /// place, flush empties whole sets).
    #[inline]
    fn on_fill(&mut self, set: u64, base: usize, way: usize, was_free: bool, tick: u64) {
        match &mut self.state {
            SaState::AgePacked { ages } => {
                let w = &mut ages[set as usize];
                if was_free {
                    debug_assert_eq!(age_filled(*w), way as u64, "dense-fill invariant");
                    *w = if way == 0 {
                        *w & !0xFF
                    } else {
                        age_promote(*w, way as u32, way as u64 - 1)
                    };
                } else if self.ways >= 2 {
                    // The victim lane held age ways-1; everything else
                    // ages by one and the lane becomes MRU.
                    *w = age_promote(*w, way as u32, self.ways as u64 - 2);
                }
                // ways == 1 after eviction: the single lane is already 0.
            }
            SaState::AgeStamp { stamps } => stamps[base + way] = tick,
            SaState::Plru {
                bits,
                padded,
                words,
            } => {
                let bits = &mut bits[set as usize * *words..(set as usize + 1) * *words];
                plru_touch(bits, *padded, way as u64);
            }
            SaState::Slru {
                stamps, protected, ..
            } => {
                // New lines enter probation.
                stamps[base + way] = tick;
                protected[set as usize] &= !(1 << way);
            }
            SaState::Random(_) | SaState::Bypass => {}
        }
    }

    #[inline]
    fn access(&mut self, line_addr: u64, sector_bit: u64, tick: u64) -> Access {
        let Some(spl) = self.pack_shift else {
            let set = self.set_of(line_addr);
            let base = set as usize * self.ways as usize;
            return self.access_pairs(set, base, line_addr, sector_bit, tick);
        };
        debug_assert!(
            line_addr < EMPTY_TAG >> spl,
            "address above the packed tag range"
        );
        // MRU filter: engaged only under the exact-LRU packed state,
        // where a repeat touch of the MRU way is a recency no-op. Only
        // the `AgePacked` path below ever records `mru_line` (other
        // policies leave it at the unmatchable `EMPTY_TAG`), and the
        // slot's own tag is re-verified, so an eviction that recycled
        // the remembered lane falls through to the full path.
        if line_addr == self.mru_line {
            // SAFETY: `mru_lane` is only ever written with `base + way`
            // values the AgePacked path just used to index `lanes`, and
            // the lane count never changes after construction, so the
            // remembered index is always in bounds.
            let slot = unsafe { self.lanes.get_unchecked_mut(self.mru_lane as usize) };
            if *slot >> spl == line_addr {
                let had = *slot & sector_bit != 0;
                *slot |= sector_bit;
                return if had { Access::Hit } else { Access::SectorMiss };
            }
        }
        let set = self.set_of(line_addr);
        let ways = self.ways as usize;
        let base = set as usize * ways;
        // Fused fast path for the default organisation (exact LRU at
        // <= 8 ways): the recency update folds into the scan's exits, the
        // dense-fill invariant (`age_filled`) replaces the free-way scan,
        // and nothing re-dispatches on the policy state. Must mirror the
        // `AgePacked` arms of `touch`/`victim`/`on_fill` exactly. The
        // promote is computed unconditionally (discarded by a conditional
        // move when the way is already MRU) and the sector OR is
        // idempotent — the hit exit is branch-light.
        if let SaState::AgePacked { ages } = &mut self.state {
            // SAFETY: `set_of` returns `set < num_sets` (mask or fastmod
            // postcondition), so `base + ways = (set + 1) * ways <=
            // num_sets * ways`, the packed `lanes` length; `ages` holds
            // one word per set. Bounds checks on the hot path cost real
            // cycles here.
            let (agew, group) = unsafe {
                (
                    &mut *ages.as_mut_ptr().add(set as usize),
                    self.lanes.get_unchecked_mut(base..base + ways),
                )
            };
            for (way, slot) in group.iter_mut().enumerate() {
                if *slot >> spl == line_addr {
                    let age = (*agew >> (way * 8)) & 0xFF;
                    let promoted = age_promote(*agew, way as u32, age.saturating_sub(1));
                    if age != 0 {
                        *agew = promoted;
                    }
                    let had = *slot & sector_bit != 0;
                    *slot |= sector_bit;
                    self.mru_line = line_addr;
                    self.mru_lane = (base + way) as u32;
                    return if had { Access::Hit } else { Access::SectorMiss };
                }
            }
            let filled = age_filled(*agew) as usize;
            let dst = if filled < ways {
                // Free fill: ways occupy densely from 0.
                *agew = if filled == 0 {
                    *agew & !0xFF
                } else {
                    age_promote(*agew, filled as u32, filled as u64 - 1)
                };
                filled
            } else {
                let victim = age_victim(*agew, ways as u32) as usize;
                if ways >= 2 {
                    *agew = age_promote(*agew, victim as u32, ways as u64 - 2);
                }
                victim
            };
            group[dst] = (line_addr << spl) | sector_bit;
            self.mru_line = line_addr;
            self.mru_lane = (base + dst) as u32;
            return Access::LineMiss;
        }
        // Generic packed path: scan, then dispatch recency to the policy
        // state (empty ways hold `EMPTY_TAG`, whose tag part is above
        // every reachable address and never matches).
        let group = &self.lanes[base..base + ways];
        let found = group.iter().position(|&s| s >> spl == line_addr);
        if let Some(way) = found {
            self.touch(set, base, way, tick);
            let slot = &mut self.lanes[base + way];
            let had = *slot & sector_bit != 0;
            *slot |= sector_bit;
            if had {
                Access::Hit
            } else {
                Access::SectorMiss
            }
        } else {
            let free = group.iter().position(|&s| s == EMPTY_TAG);
            let dst = match free {
                Some(way) => way,
                None => match self.victim(set, base) {
                    Some(way) => way,
                    None => return Access::LineMiss, // bypass: no allocation
                },
            };
            self.lanes[base + dst] = (line_addr << spl) | sector_bit;
            self.on_fill(set, base, dst, free.is_some(), tick);
            Access::LineMiss
        }
    }

    /// [`Self::access`] for the pair layout (`> 16` sectors per line —
    /// no modeled geometry; correctness only, never the hot path).
    fn access_pairs(
        &mut self,
        set: u64,
        base: usize,
        line_addr: u64,
        sector_bit: u64,
        tick: u64,
    ) -> Access {
        let ways = self.ways as usize;
        let group = &self.lanes[2 * base..2 * (base + ways)];
        let found = group.chunks_exact(2).position(|p| p[0] == line_addr);
        if let Some(way) = found {
            debug_assert_ne!(
                self.lanes[2 * (base + way) + 1],
                0,
                "resident line has sectors"
            );
            self.touch(set, base, way, tick);
            let sec = &mut self.lanes[2 * (base + way) + 1];
            if *sec & sector_bit != 0 {
                Access::Hit
            } else {
                *sec |= sector_bit;
                Access::SectorMiss
            }
        } else {
            let free = group.chunks_exact(2).position(|p| p[1] == 0);
            let dst = match free {
                Some(way) => way,
                None => match self.victim(set, base) {
                    Some(way) => way,
                    None => return Access::LineMiss, // bypass: no allocation
                },
            };
            self.lanes[2 * (base + dst)] = line_addr;
            self.lanes[2 * (base + dst) + 1] = sector_bit;
            self.on_fill(set, base, dst, free.is_some(), tick);
            Access::LineMiss
        }
    }

    fn probe(&self, line_addr: u64, sector_bit: u64) -> bool {
        let set = self.set_of(line_addr);
        let ways = self.ways as usize;
        let base = set as usize * ways;
        match self.pack_shift {
            Some(spl) => self.lanes[base..base + ways]
                .iter()
                .find(|&&s| s >> spl == line_addr)
                .map(|&s| s & sector_bit != 0)
                .unwrap_or(false),
            None => self.lanes[2 * base..2 * (base + ways)]
                .chunks_exact(2)
                .find(|p| p[0] == line_addr)
                .map(|p| p[1] & sector_bit != 0)
                .unwrap_or(false),
        }
    }

    fn flush(&mut self) {
        self.mru_line = EMPTY_TAG;
        match self.pack_shift {
            Some(_) => self.lanes.iter_mut().for_each(|s| *s = EMPTY_TAG),
            None => {
                for p in self.lanes.chunks_exact_mut(2) {
                    p[0] = EMPTY_TAG;
                    p[1] = 0;
                }
            }
        }
        match &mut self.state {
            SaState::AgePacked { ages } => ages.iter_mut().for_each(|a| *a = u64::MAX),
            SaState::AgeStamp { stamps } => stamps.iter_mut().for_each(|s| *s = 0),
            SaState::Plru { bits, .. } => bits.iter_mut().for_each(|b| *b = 0),
            SaState::Slru {
                stamps, protected, ..
            } => {
                stamps.iter_mut().for_each(|s| *s = 0);
                protected.iter_mut().for_each(|p| *p = 0);
            }
            // The random victim stream deliberately survives a flush: a
            // flush invalidates contents, it does not reseed the device.
            SaState::Random(_) | SaState::Bypass => {}
        }
    }
}

// --- fully-associative non-LRU engines ---

/// Head/tail of an intrusive list threaded through the slot arena.
#[derive(Debug, Clone, Copy)]
struct ListEnds {
    head: u32,
    tail: u32,
}

const EMPTY_LIST: ListEnds = ListEnds {
    head: NIL,
    tail: NIL,
};

/// Unlinks `slot` from the list owning it.
#[inline]
fn list_unlink(slots: &mut [FaSlot], ends: &mut ListEnds, slot: u32) {
    let (prev, next) = {
        let s = &slots[slot as usize];
        (s.prev, s.next)
    };
    if prev == NIL {
        ends.head = next;
    } else {
        slots[prev as usize].next = next;
    }
    if next == NIL {
        ends.tail = prev;
    } else {
        slots[next as usize].prev = prev;
    }
}

/// Appends `slot` at the MRU (tail) end of the list.
#[inline]
fn list_push_tail(slots: &mut [FaSlot], ends: &mut ListEnds, slot: u32) {
    let s = &mut slots[slot as usize];
    s.prev = ends.tail;
    s.next = NIL;
    if ends.tail == NIL {
        ends.head = slot;
    } else {
        slots[ends.tail as usize].next = slot;
    }
    ends.tail = slot;
}

/// Per-policy recency state of [`FaPolicyStore`] (exact LRU uses the
/// dedicated [`FlatLru`] instead).
#[derive(Debug)]
enum FaState {
    /// Tree-PLRU over the whole arena (leaf = arena index).
    Plru { bits: Vec<u64>, padded: u64 },
    /// Segmented LRU: probation + protected intrusive lists (head = LRU
    /// end) and a segment-membership bitvector over arena indices.
    Slru {
        prob: ListEnds,
        prot: ListEnds,
        prot_len: u64,
        prot_cap: u64,
        seg: Vec<u64>,
    },
    /// Seeded uniform-random victim over arena indices.
    Random(Xorshift64),
    /// Streaming: never evicts; a full cache stops allocating.
    Bypass,
}

/// Fully-associative organisation for non-LRU policies: the same
/// [`LineIndex`] + slot arena as [`FlatLru`] with policy recency state on
/// the side. Eviction replaces the victim's arena slot in place, so arena
/// indices are stable identities for the recency structures.
#[derive(Debug)]
struct FaPolicyStore {
    capacity_lines: u64,
    index: LineIndex,
    slots: Vec<FaSlot>,
    state: FaState,
    /// MRU line filter. Unlike [`FlatLru`]'s, this one only short-circuits
    /// the hash probe — the policy `touch` still runs, because a repeat
    /// touch is *not* a recency no-op for every policy (SLRU promotes a
    /// probation line to protected on its second touch). The slot tag is
    /// re-verified, so in-place eviction recycling falls through safely.
    mru_line: u64,
    mru_slot: u32,
}

impl FaPolicyStore {
    fn new(capacity_lines: u64, policy: ReplacementPolicy) -> Self {
        let state = match policy {
            ReplacementPolicy::Lru => unreachable!("LRU uses FlatLru"),
            ReplacementPolicy::TreePlru => {
                let padded = capacity_lines.next_power_of_two();
                FaState::Plru {
                    bits: vec![0; plru_words(padded)],
                    padded,
                }
            }
            ReplacementPolicy::Slru => FaState::Slru {
                prob: EMPTY_LIST,
                prot: EMPTY_LIST,
                prot_len: 0,
                prot_cap: capacity_lines / 2,
                seg: vec![0; capacity_lines.div_ceil(64) as usize],
            },
            ReplacementPolicy::Random => FaState::Random(Xorshift64::for_geometry(capacity_lines)),
            ReplacementPolicy::Bypass => FaState::Bypass,
        };
        FaPolicyStore {
            capacity_lines,
            index: LineIndex::new(),
            slots: Vec::new(),
            state,
            mru_line: EMPTY_TAG,
            mru_slot: 0,
        }
    }

    /// Recency update for a lookup that found `slot` resident.
    #[inline]
    fn touch(&mut self, slot: u32) {
        match &mut self.state {
            FaState::Plru { bits, padded } => plru_touch(bits, *padded, slot as u64),
            FaState::Slru {
                prob,
                prot,
                prot_len,
                prot_cap,
                seg,
            } => {
                let in_prot = (seg[slot as usize / 64] >> (slot % 64)) & 1 == 1;
                if in_prot {
                    list_unlink(&mut self.slots, prot, slot);
                    list_push_tail(&mut self.slots, prot, slot);
                } else if *prot_cap > 0 {
                    // Promote to protected-MRU; on overflow demote the
                    // protected-LRU back to probation as its MRU.
                    list_unlink(&mut self.slots, prob, slot);
                    list_push_tail(&mut self.slots, prot, slot);
                    seg[slot as usize / 64] |= 1 << (slot % 64);
                    *prot_len += 1;
                    if *prot_len > *prot_cap {
                        let demote = prot.head;
                        debug_assert_ne!(demote, slot, "overflow implies >= 2 entries");
                        list_unlink(&mut self.slots, prot, demote);
                        seg[demote as usize / 64] &= !(1 << (demote % 64));
                        *prot_len -= 1;
                        list_push_tail(&mut self.slots, prob, demote);
                    }
                } else {
                    list_unlink(&mut self.slots, prob, slot);
                    list_push_tail(&mut self.slots, prob, slot);
                }
            }
            FaState::Random(_) | FaState::Bypass => {}
        }
    }

    /// Recency update for a line filled into `slot`.
    #[inline]
    fn on_fill(&mut self, slot: u32) {
        match &mut self.state {
            FaState::Plru { bits, padded } => plru_touch(bits, *padded, slot as u64),
            FaState::Slru { prob, seg, .. } => {
                // New lines enter probation at the MRU end.
                seg[slot as usize / 64] &= !(1 << (slot % 64));
                list_push_tail(&mut self.slots, prob, slot);
            }
            FaState::Random(_) | FaState::Bypass => {}
        }
    }

    /// One access: MRU-line probe skip, then the full path.
    #[inline]
    fn access(&mut self, line_addr: u64, sector_bit: u64) -> Access {
        if line_addr == self.mru_line {
            if let Some(s) = self.slots.get(self.mru_slot as usize) {
                if s.tag == line_addr {
                    let slot = self.mru_slot;
                    self.touch(slot);
                    let s = &mut self.slots[slot as usize];
                    let had = s.valid_sectors & sector_bit != 0;
                    s.valid_sectors |= sector_bit;
                    return if had { Access::Hit } else { Access::SectorMiss };
                }
            }
        }
        self.access_cold(line_addr, sector_bit)
    }

    fn access_cold(&mut self, line_addr: u64, sector_bit: u64) -> Access {
        if let Some(slot) = self.index.find(&self.slots, line_addr) {
            self.touch(slot);
            self.mru_line = line_addr;
            self.mru_slot = slot;
            let s = &mut self.slots[slot as usize];
            if s.valid_sectors & sector_bit != 0 {
                Access::Hit
            } else {
                s.valid_sectors |= sector_bit;
                Access::SectorMiss
            }
        } else if (self.slots.len() as u64) < self.capacity_lines {
            self.index.maybe_grow(&self.slots);
            let slot = self.slots.len() as u32;
            self.slots.push(FaSlot {
                tag: line_addr,
                valid_sectors: sector_bit,
                last_use: 0,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(line_addr, slot);
            self.on_fill(slot);
            self.mru_line = line_addr;
            self.mru_slot = slot;
            Access::LineMiss
        } else {
            let victim = match &mut self.state {
                FaState::Bypass => return Access::LineMiss, // no allocation
                FaState::Plru { bits, padded } => {
                    plru_victim(bits, *padded, self.capacity_lines) as u32
                }
                FaState::Random(rng) => rng.below(self.capacity_lines) as u32,
                FaState::Slru {
                    prob,
                    prot,
                    prot_len,
                    seg,
                    ..
                } => {
                    // Probation-LRU first; protected is capped below the
                    // capacity so probation is only empty when cap == 0.
                    let v = if prob.head != NIL {
                        prob.head
                    } else {
                        prot.head
                    };
                    if (seg[v as usize / 64] >> (v % 64)) & 1 == 1 {
                        list_unlink(&mut self.slots, prot, v);
                        seg[v as usize / 64] &= !(1 << (v % 64));
                        *prot_len -= 1;
                    } else {
                        list_unlink(&mut self.slots, prob, v);
                    }
                    v
                }
            };
            let victim_tag = self.slots[victim as usize].tag;
            self.index.remove(&self.slots, victim_tag);
            let s = &mut self.slots[victim as usize];
            s.tag = line_addr;
            s.valid_sectors = sector_bit;
            self.index.insert(line_addr, victim);
            self.on_fill(victim);
            self.mru_line = line_addr;
            self.mru_slot = victim;
            Access::LineMiss
        }
    }

    fn probe(&self, line_addr: u64, sector_bit: u64) -> bool {
        self.index
            .find(&self.slots, line_addr)
            .map(|slot| self.slots[slot as usize].valid_sectors & sector_bit != 0)
            .unwrap_or(false)
    }

    fn flush(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.mru_line = EMPTY_TAG;
        match &mut self.state {
            FaState::Plru { bits, .. } => bits.iter_mut().for_each(|b| *b = 0),
            FaState::Slru {
                prob,
                prot,
                prot_len,
                seg,
                ..
            } => {
                *prob = EMPTY_LIST;
                *prot = EMPTY_LIST;
                *prot_len = 0;
                seg.iter_mut().for_each(|w| *w = 0);
            }
            // The random victim stream deliberately survives a flush.
            FaState::Random(_) | FaState::Bypass => {}
        }
    }
}

#[derive(Debug)]
enum Organization {
    SetAssociative(SetAssoc),
    FullyAssociative(FlatLru),
    FullyAssociativePolicy(FaPolicyStore),
}

/// A sectored cache with a pluggable replacement policy (see module docs
/// for the organisations and the flat tag store backing them).
#[derive(Debug)]
pub struct SectoredCache {
    line_size: u64,
    sector_size: u64,
    sectors_per_line: u32,
    /// `Some((line_shift, line_mask, sector_shift))` when both the line
    /// and sector sizes are powers of two (every modeled geometry): the
    /// address split becomes shift/mask instead of two u64 divisions —
    /// the dominant per-access cost on the hot path.
    split: Option<(u32, u64, u32)>,
    policy: ReplacementPolicy,
    org: Organization,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SectoredCache {
    /// Builds a cache from a [`CacheSpec`]. A spec associativity of
    /// [`FULLY_ASSOCIATIVE`] — or any value at/above the line count —
    /// selects the fully-associative organisation.
    pub fn from_spec(spec: &CacheSpec) -> Self {
        Self::from_spec_with_policy(spec, ReplacementPolicy::Lru)
    }

    /// [`Self::from_spec`] with an explicit replacement policy.
    pub fn from_spec_with_policy(spec: &CacheSpec, policy: ReplacementPolicy) -> Self {
        Self::new_with_policy(
            spec.size,
            spec.line_size as u64,
            spec.fetch_granularity as u64,
            spec.associativity,
            policy,
        )
    }

    /// Builds an exact-LRU cache with explicit geometry. `size` must be a
    /// multiple of `line_size`, and `sector_size` must divide `line_size`.
    /// If `ways` does not divide the line count, the largest divisor below
    /// it is used (capacity is the invariant MT4G measures).
    pub fn new(size: u64, line_size: u64, sector_size: u64, ways: u32) -> Self {
        Self::new_with_policy(size, line_size, sector_size, ways, ReplacementPolicy::Lru)
    }

    /// [`Self::new`] with an explicit replacement policy.
    pub fn new_with_policy(
        size: u64,
        line_size: u64,
        sector_size: u64,
        ways: u32,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(size > 0 && line_size > 0 && sector_size > 0);
        assert_eq!(
            size % line_size,
            0,
            "cache size {size} must be a multiple of the line size {line_size}"
        );
        assert_eq!(
            line_size % sector_size,
            0,
            "line size {line_size} must be a multiple of the sector size {sector_size}"
        );
        let sectors_per_line = (line_size / sector_size) as u32;
        assert!(
            sectors_per_line <= 64,
            "at most 64 sectors per line supported"
        );
        let total_lines = size / line_size;
        let org = if ways as u64 >= total_lines {
            match policy {
                ReplacementPolicy::Lru => Organization::FullyAssociative(FlatLru::new(total_lines)),
                _ => Organization::FullyAssociativePolicy(FaPolicyStore::new(total_lines, policy)),
            }
        } else {
            let mut ways = ways.max(1) as u64;
            while !total_lines.is_multiple_of(ways) {
                ways -= 1;
            }
            Organization::SetAssociative(SetAssoc::new(
                total_lines,
                ways as u32,
                sectors_per_line,
                policy,
            ))
        };
        let split = (line_size.is_power_of_two() && sector_size.is_power_of_two()).then(|| {
            (
                line_size.trailing_zeros(),
                line_size - 1,
                sector_size.trailing_zeros(),
            )
        });
        SectoredCache {
            line_size,
            sector_size,
            sectors_per_line,
            split,
            policy,
            org,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Splits a byte address into (line address, sector bit).
    #[inline(always)]
    fn split_addr(&self, addr: u64) -> (u64, u64) {
        match self.split {
            Some((line_shift, line_mask, sector_shift)) => (
                addr >> line_shift,
                1u64 << ((addr & line_mask) >> sector_shift),
            ),
            None => (
                addr / self.line_size,
                1u64 << ((addr % self.line_size) / self.sector_size),
            ),
        }
    }

    /// The replacement policy this cache was built with.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        match &self.org {
            Organization::SetAssociative(sa) => sa.num_sets * sa.ways as u64 * self.line_size,
            Organization::FullyAssociative(fa) => fa.capacity_lines * self.line_size,
            Organization::FullyAssociativePolicy(fa) => fa.capacity_lines * self.line_size,
        }
    }

    /// Effective associativity (the line count when fully associative).
    pub fn ways(&self) -> u32 {
        match &self.org {
            Organization::SetAssociative(sa) => sa.ways,
            Organization::FullyAssociative(fa) => fa.capacity_lines.min(u32::MAX as u64) as u32,
            Organization::FullyAssociativePolicy(fa) => {
                fa.capacity_lines.min(u32::MAX as u64) as u32
            }
        }
    }

    /// Number of sets (1 when fully associative).
    pub fn num_sets(&self) -> u64 {
        match &self.org {
            Organization::SetAssociative(sa) => sa.num_sets,
            Organization::FullyAssociative(_) | Organization::FullyAssociativePolicy(_) => 1,
        }
    }

    /// (hits, misses) counters since construction or [`Self::reset_stats`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clears the hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates all contents (and keeps the counters). Policy recency
    /// state resets with the contents; the random victim stream does not.
    pub fn flush(&mut self) {
        match &mut self.org {
            Organization::SetAssociative(sa) => sa.flush(),
            Organization::FullyAssociative(fa) => fa.flush(),
            Organization::FullyAssociativePolicy(fa) => fa.flush(),
        }
    }

    /// Performs an access at byte address `addr`, allocating on miss.
    ///
    /// A [`Access::LineMiss`] allocates the line (evicting the policy's
    /// victim if full — or not allocating at all under bypass) and fetches
    /// exactly the sector containing `addr` — one fetch transaction. A
    /// [`Access::SectorMiss`] fetches the missing sector into the
    /// already-present line.
    #[inline]
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let tick = self.tick;
        let (line_addr, sector_bit) = self.split_addr(addr);

        let result = match &mut self.org {
            Organization::SetAssociative(sa) => sa.access(line_addr, sector_bit, tick),
            Organization::FullyAssociative(fa) => fa.access(line_addr, sector_bit, tick),
            Organization::FullyAssociativePolicy(fa) => fa.access(line_addr, sector_bit),
        };
        let hit = result.is_hit() as u64;
        self.hits += hit;
        self.misses += 1 - hit;
        result
    }

    /// Peeks whether `addr`'s sector is resident without touching recency
    /// state or allocating.
    pub fn probe(&self, addr: u64) -> bool {
        let (line_addr, sector_bit) = self.split_addr(addr);
        match &self.org {
            Organization::SetAssociative(sa) => sa.probe(line_addr, sector_bit),
            Organization::FullyAssociative(fa) => fa
                .find(line_addr)
                .map(|slot| fa.slots[slot as usize].valid_sectors & sector_bit != 0)
                .unwrap_or(false),
            Organization::FullyAssociativePolicy(fa) => fa.probe(line_addr, sector_bit),
        }
    }

    /// Sector (fetch-transaction) size in bytes.
    pub fn sector_size(&self) -> u64 {
        self.sector_size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Sectors per line.
    pub fn sectors_per_line(&self) -> u32 {
        self.sectors_per_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 KiB, 64 B lines, 32 B sectors, fully associative.
    fn fa_cache() -> SectoredCache {
        SectoredCache::new(1024, 64, 32, FULLY_ASSOCIATIVE)
    }

    /// Same geometry, 4-way set associative (4 sets).
    fn sa_cache() -> SectoredCache {
        SectoredCache::new(1024, 64, 32, 4)
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let c = sa_cache();
        assert_eq!(c.capacity(), 1024);
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.ways(), 4);
        assert_eq!(c.sectors_per_line(), 2);
        let f = fa_cache();
        assert_eq!(f.capacity(), 1024);
        assert_eq!(f.num_sets(), 1);
        assert_eq!(f.ways(), 16);
    }

    #[test]
    fn associativity_shrinks_to_divisor() {
        // 3 lines total with requested 2 ways -> falls back to 1 way.
        let c = SectoredCache::new(192, 64, 64, 2);
        assert_eq!(c.ways(), 1);
        assert_eq!(c.capacity(), 192);
    }

    #[test]
    fn non_power_of_two_set_count_still_maps_all_lines() {
        // 6 lines, 2 ways -> 3 sets: the multiply-high (non-bitmask) path.
        let mut c = SectoredCache::new(384, 64, 64, 2);
        assert_eq!(c.num_sets(), 3);
        for i in 0..6u64 {
            assert_eq!(c.access(i * 64), Access::LineMiss);
        }
        for i in 0..6u64 {
            assert_eq!(c.access(i * 64), Access::Hit, "line {i}");
        }
    }

    #[test]
    fn first_access_misses_second_hits() {
        for mut c in [fa_cache(), sa_cache()] {
            assert_eq!(c.access(0), Access::LineMiss);
            assert_eq!(c.access(0), Access::Hit);
            assert_eq!(c.access(4), Access::Hit); // same sector
        }
    }

    #[test]
    fn sector_miss_on_untouched_sector_of_present_line() {
        for mut c in [fa_cache(), sa_cache()] {
            assert_eq!(c.access(0), Access::LineMiss);
            // Same line (64 B), other sector (offset 32).
            assert_eq!(c.access(32), Access::SectorMiss);
            assert_eq!(c.access(32), Access::Hit);
        }
    }

    #[test]
    fn sequential_array_within_capacity_hits_after_warmup() {
        for mut c in [fa_cache(), sa_cache()] {
            let addrs: Vec<u64> = (0..1024 / 32).map(|i| i * 32).collect();
            for &a in &addrs {
                c.access(a); // warm-up
            }
            for &a in &addrs {
                assert_eq!(c.access(a), Access::Hit, "addr {a}");
            }
        }
    }

    #[test]
    fn fully_associative_array_beyond_capacity_misses_every_access() {
        // Classic LRU thrashing: array of capacity + one line, accessed
        // cyclically, misses on every single access — the sharp cliff the
        // size benchmark keys on.
        let mut c = fa_cache();
        let n_sectors = (1024 + 64) / 32;
        let addrs: Vec<u64> = (0..n_sectors).map(|i| i * 32).collect();
        for &a in &addrs {
            c.access(a); // warm-up
        }
        c.reset_stats();
        for &a in &addrs {
            assert!(!c.access(a).is_hit(), "addr {a} unexpectedly hit");
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, n_sectors);
    }

    #[test]
    fn set_associative_boundary_mixes_hits_and_misses() {
        // The paper's Fig. 1 middle case: just past the capacity, only the
        // overflowing sets thrash; the rest still hit.
        let mut c = sa_cache();
        let n_sectors = (1024 + 64) / 32;
        let addrs: Vec<u64> = (0..n_sectors).map(|i| i * 32).collect();
        for &a in &addrs {
            c.access(a);
        }
        c.reset_stats();
        for &a in &addrs {
            c.access(a);
        }
        let (hits, misses) = c.stats();
        assert!(hits > 0, "non-overflowing sets should hit");
        assert!(misses > 0, "the overflowing set should thrash");
    }

    #[test]
    fn stride_above_line_size_defeats_capacity_miss() {
        // Array of 2x capacity but stride 2x line size: only half the lines
        // are touched, which fits -> hits after warm-up. This is the
        // premise of the cache-line-size benchmark (Sec. IV-E).
        let mut c = fa_cache();
        let stride = 128u64; // 2 * line
        let array = 2048u64; // 2 * capacity
        let addrs: Vec<u64> = (0..array / stride).map(|i| i * stride).collect();
        for &a in &addrs {
            c.access(a);
        }
        c.reset_stats();
        for &a in &addrs {
            assert!(c.access(a).is_hit());
        }
    }

    #[test]
    fn flush_invalidates_everything() {
        for mut c in [fa_cache(), sa_cache()] {
            c.access(0);
            assert!(c.probe(0));
            c.flush();
            assert!(!c.probe(0));
            assert_eq!(c.access(0), Access::LineMiss);
        }
    }

    #[test]
    fn cold_cache_stride_classification() {
        // The fetch-granularity benchmark's signal: on a cold cache, stride
        // below the sector size produces a mix of hits and misses; stride
        // at/above it produces only misses.
        let run = |stride: u64| -> (u64, u64) {
            let mut c = fa_cache();
            for i in 0..16 {
                c.access(i * stride);
            }
            c.stats()
        };
        let (h4, m4) = run(4);
        assert!(h4 > 0 && m4 > 0, "stride 4 should mix hits and misses");
        let (h32, m32) = run(32);
        assert_eq!(h32, 0, "stride = sector size -> all misses");
        assert_eq!(m32, 16);
        let (h64, _) = run(64);
        assert_eq!(h64, 0, "stride above sector size -> all misses");
    }

    #[test]
    fn two_interleaved_arrays_evict_each_other() {
        // Amount/sharing benchmark core: arrays A and B each nearly the
        // capacity; warming B after A evicts A.
        let mut c = fa_cache();
        let a_base = 0u64;
        let b_base = 1 << 20;
        let sectors = 1024 / 32;
        for i in 0..sectors {
            c.access(a_base + i * 32);
        }
        for i in 0..sectors {
            c.access(b_base + i * 32);
        }
        c.reset_stats();
        for i in 0..sectors {
            assert!(!c.access(a_base + i * 32).is_hit());
        }
    }

    #[test]
    fn lru_prefers_evicting_oldest() {
        // 2-line fully-associative cache.
        let mut c = SectoredCache::new(128, 64, 64, FULLY_ASSOCIATIVE);
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(0); // refresh line 0
        c.access(128); // evicts line 1 (LRU), not line 0
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn fa_capacity_is_respected_exactly() {
        let mut c = fa_cache(); // 16 lines
        for i in 0..16u64 {
            c.access(i * 64);
        }
        for i in 0..16u64 {
            assert!(c.probe(i * 64), "line {i} must be resident");
        }
        c.access(16 * 64); // one over
        let resident = (0..17u64).filter(|&i| c.probe(i * 64)).count();
        assert_eq!(resident, 16);
    }

    #[test]
    fn fa_index_survives_growth_and_eviction_churn() {
        // Enough distinct lines to force several index doublings, then a
        // thrashing pass to exercise backward-shift deletion.
        let mut c = SectoredCache::new(1 << 16, 64, 64, FULLY_ASSOCIATIVE); // 1024 lines
        for round in 0..3u64 {
            for i in 0..2048u64 {
                c.access((round * 2048 + i) * 64);
            }
        }
        // The last 1024 distinct lines are resident, nothing else.
        let resident = (0..3 * 2048u64).filter(|&i| c.probe(i * 64)).count();
        assert_eq!(resident, 1024);
        for i in (3 * 2048 - 1024)..(3 * 2048u64) {
            assert!(c.probe(i * 64), "line {i} must be resident");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the line size")]
    fn bad_geometry_panics() {
        SectoredCache::new(1000, 64, 32, 4);
    }

    // --- packed-recency building blocks ---

    #[test]
    fn age_word_tracks_an_lru_permutation() {
        // Fill a 4-way set: each fill promotes the occupied lanes.
        let mut ages = u64::MAX;
        assert_eq!(age_filled(ages), 0);
        ages &= !0xFF; // fill lane 0
        ages = age_promote(ages, 1, 0); // fill lane 1
        ages = age_promote(ages, 2, 1); // fill lane 2
        ages = age_promote(ages, 3, 2); // fill lane 3
        assert_eq!(age_filled(ages), 4);
        // Ages now: lane0=3 lane1=2 lane2=1 lane3=0 -> victim is lane 0.
        assert_eq!(age_victim(ages, 4), 0);
        // Touch lane 0 (age 3): promotes lanes <= 2, lane 0 -> MRU.
        ages = age_promote(ages, 0, 2);
        assert_eq!(age_victim(ages, 4), 1, "lane 1 is now the oldest");
        // Upper lanes stay empty padding throughout.
        assert_eq!(ages & 0xFFFF_FFFF_0000_0000, 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn age_victim_handles_every_full_permutation_of_8() {
        // Exhaustively rotate a full 8-way word and check the detect.
        let base: [u64; 8] = [3, 7, 0, 5, 1, 6, 2, 4];
        for rot in 0..8usize {
            let mut ages = 0u64;
            let mut expect = 0;
            for (lane, &a) in base.iter().enumerate() {
                let a = (a + rot as u64) % 8;
                ages |= a << (lane * 8);
                if a == 7 {
                    expect = lane as u32;
                }
            }
            assert_eq!(age_victim(ages, 8), expect, "rotation {rot}");
        }
    }

    #[test]
    fn multiply_high_reduction_matches_modulo() {
        // 476 sets is the bench geometry (238 KiB / 128 B / 4 ways); also
        // sweep other awkward divisors and huge line addresses.
        for d in [3u64, 5, 7, 31, 476, 12_345, (1 << 40) - 1, u64::MAX - 1] {
            let magic = u64::MAX / d;
            for line in [0u64, 1, d - 1, d, d + 1, 1 << 30, u64::MAX / 7, u64::MAX] {
                assert_eq!(fastmod(line, magic, d), line % d, "{line} mod {d}");
            }
        }
        // And through a real cache: 6 lines / 2 ways -> 3 sets.
        let sa = SetAssoc::new(6, 2, 1, ReplacementPolicy::Lru);
        assert_eq!(sa.num_sets, 3);
        for line in 0..100u64 {
            assert_eq!(sa.set_of(line), line % 3);
        }
    }

    #[test]
    fn policy_is_recorded_and_defaults_to_lru() {
        assert_eq!(fa_cache().policy(), ReplacementPolicy::Lru);
        let c = SectoredCache::new_with_policy(1024, 64, 32, 4, ReplacementPolicy::TreePlru);
        assert_eq!(c.policy(), ReplacementPolicy::TreePlru);
    }

    #[test]
    fn lru_stamp_fallback_above_eight_ways_is_still_exact_lru() {
        // 16 ways, one set: behaves exactly like the FA LRU cache.
        let mut sa = SectoredCache::new(2048, 64, 64, 16);
        let mut fa = SectoredCache::new(1024, 64, 64, FULLY_ASSOCIATIVE);
        assert_eq!(sa.num_sets(), 2);
        assert_eq!(sa.ways(), 16);
        // Drive only even lines so everything maps to set 0 of `sa` —
        // a single 16-way set mirroring the 16-line FA cache.
        for i in 0..64u64 {
            let line = (i * 7 + i / 3) % 40 * 2;
            let got = sa.access(line * 64);
            let want = fa.access(line / 2 * 64);
            assert_eq!(got, want, "step {i} line {line}");
        }
    }

    #[test]
    fn bypass_stops_allocating_once_full() {
        let mut c = SectoredCache::new_with_policy(
            128,
            64,
            64,
            FULLY_ASSOCIATIVE,
            ReplacementPolicy::Bypass,
        );
        assert_eq!(c.access(0), Access::LineMiss);
        assert_eq!(c.access(64), Access::LineMiss);
        // Full: new lines stream through without evicting anything.
        for _ in 0..3 {
            assert_eq!(c.access(128), Access::LineMiss);
        }
        assert!(c.probe(0) && c.probe(64) && !c.probe(128));
        // Residents keep hitting; a flush frees the ways again.
        assert_eq!(c.access(0), Access::Hit);
        c.flush();
        assert_eq!(c.access(128), Access::LineMiss);
        assert_eq!(c.access(128), Access::Hit);
    }

    #[test]
    fn slru_protects_reaccessed_lines_from_a_scan() {
        // 4-line FA SLRU (protected cap 2): re-reference two lines, then
        // stream a scan longer than the cache — the protected pair
        // survives where true LRU would have evicted everything.
        let mut c =
            SectoredCache::new_with_policy(256, 64, 64, FULLY_ASSOCIATIVE, ReplacementPolicy::Slru);
        c.access(0);
        c.access(64);
        c.access(0); // promote line 0
        c.access(64); // promote line 1
        for i in 2..10u64 {
            c.access(i * 64); // scan: churns probation only
        }
        assert!(c.probe(0), "protected line 0 must survive the scan");
        assert!(c.probe(64), "protected line 1 must survive the scan");
    }

    #[test]
    fn random_policy_is_deterministic_per_instance() {
        let drive = |mut c: SectoredCache| -> Vec<bool> {
            for i in 0..40u64 {
                c.access((i * 13 % 23) * 64);
            }
            (0..23u64).map(|i| c.probe(i * 64)).collect()
        };
        let mk = || {
            SectoredCache::new_with_policy(
                512,
                64,
                64,
                FULLY_ASSOCIATIVE,
                ReplacementPolicy::Random,
            )
        };
        assert_eq!(drive(mk()), drive(mk()), "same geometry => same stream");
    }
}

//! Device description types — the *ground truth* a simulated GPU is built
//! from, and which the MT4G discovery pipeline must recover.

use serde::{Deserialize, Serialize};

use crate::cache::ReplacementPolicy;
use crate::quirks::Quirks;
use crate::tlb::TlbSpec;

/// GPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA GPUs (Pascal and newer are in scope).
    Nvidia,
    /// AMD CDNA GPUs.
    Amd,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
        }
    }
}

/// GPU microarchitecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Microarch {
    Pascal,
    Volta,
    Turing,
    Ampere,
    Hopper,
    Blackwell,
    Cdna1,
    Cdna2,
    Cdna3,
    Rdna3,
    Rdna4,
}

impl Microarch {
    /// Vendor the microarchitecture belongs to.
    pub fn vendor(self) -> Vendor {
        match self {
            Microarch::Pascal
            | Microarch::Volta
            | Microarch::Turing
            | Microarch::Ampere
            | Microarch::Hopper
            | Microarch::Blackwell => Vendor::Nvidia,
            Microarch::Cdna1
            | Microarch::Cdna2
            | Microarch::Cdna3
            | Microarch::Rdna3
            | Microarch::Rdna4 => Vendor::Amd,
        }
    }
}

/// The distinct cache / memory elements MT4G reports on (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheKind {
    /// NVIDIA unified L1 data cache.
    L1,
    /// NVIDIA texture cache (physically unified with L1 since Pascal).
    Texture,
    /// NVIDIA read-only data cache (`__ldg`).
    Readonly,
    /// NVIDIA constant L1 cache.
    ConstL1,
    /// NVIDIA constant L1.5 cache.
    ConstL15,
    /// L2 cache (both vendors).
    L2,
    /// AMD L3 cache / Infinity Cache (CDNA3).
    L3,
    /// AMD vector L1 data cache.
    VL1,
    /// AMD scalar L1 data cache (shared among a group of CUs).
    SL1D,
    /// NVIDIA Shared Memory (scratchpad).
    SharedMemory,
    /// AMD Local Data Share (scratchpad).
    Lds,
    /// Device (main) memory.
    DeviceMemory,
}

impl CacheKind {
    /// Human-readable label used in reports, matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            CacheKind::L1 => "L1",
            CacheKind::Texture => "Texture",
            CacheKind::Readonly => "Readonly",
            CacheKind::ConstL1 => "Const L1",
            CacheKind::ConstL15 => "Const L1.5",
            CacheKind::L2 => "L2",
            CacheKind::L3 => "L3",
            CacheKind::VL1 => "vL1",
            CacheKind::SL1D => "sL1d",
            CacheKind::SharedMemory => "Shared Mem",
            CacheKind::Lds => "LDS",
            CacheKind::DeviceMemory => "Device Mem",
        }
    }

    /// Parses the user-facing element spellings accepted by the CLI
    /// (`--only`) and the serve protocol (`"only"` request field) —
    /// case-insensitive, with the common short forms as aliases. One
    /// parser for both front ends so a cell named over the wire can never
    /// mean a different element than the same cell named on the command
    /// line (the result cache keys on the parsed element).
    pub fn parse(s: &str) -> Option<CacheKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "l1" => CacheKind::L1,
            "l2" => CacheKind::L2,
            "l3" => CacheKind::L3,
            "texture" | "tex" => CacheKind::Texture,
            "readonly" | "ro" => CacheKind::Readonly,
            "constl1" | "cl1" => CacheKind::ConstL1,
            "constl15" | "cl15" | "cl1.5" => CacheKind::ConstL15,
            "shared" | "sharedmemory" => CacheKind::SharedMemory,
            "lds" => CacheKind::Lds,
            "vl1" => CacheKind::VL1,
            "sl1d" => CacheKind::SL1D,
            "device" | "dram" => CacheKind::DeviceMemory,
            _ => return None,
        })
    }
}

/// Logical memory space a load instruction targets. Loads through different
/// logical spaces may or may not hit the same *physical* cache — telling
/// those apart is the Physical Sharing benchmark's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySpace {
    /// NVIDIA global memory (`ld.global.*`).
    Global,
    /// NVIDIA texture fetch (`tex1Dfetch`).
    Texture,
    /// NVIDIA read-only path (`__ldg`).
    Readonly,
    /// NVIDIA constant memory (`ld.const`).
    Constant,
    /// NVIDIA Shared Memory (`__shared__`).
    Shared,
    /// AMD vector path (`flat_load_dword`).
    Vector,
    /// AMD scalar path (`s_load_dword`).
    Scalar,
    /// AMD Local Data Share (`__shared__`).
    Lds,
}

/// Cache-policy flags on a load, mirroring PTX `.ca`/`.cg`/`.cv` modifiers
/// and the AMD GLC/sc0/sc1 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoadFlags {
    /// Skip the L1-level cache (`ld.global.cg` / GLC=1): the load is
    /// serviced by L2 or below and does not allocate in L1.
    pub bypass_l1: bool,
    /// Skip all caches (`ld.global.cv`-like / sc0+sc1): the load goes to
    /// device memory and allocates nowhere. Used to measure DRAM latency.
    pub bypass_all: bool,
}

impl LoadFlags {
    /// `.ca` — cache at all levels (the default).
    pub const CACHE_ALL: LoadFlags = LoadFlags {
        bypass_l1: false,
        bypass_all: false,
    };
    /// `.cg` / GLC=1 — bypass the L1 level.
    pub const CACHE_GLOBAL: LoadFlags = LoadFlags {
        bypass_l1: true,
        bypass_all: false,
    };
    /// `.cv`-like — bypass every cache level.
    pub const VOLATILE: LoadFlags = LoadFlags {
        bypass_l1: true,
        bypass_all: true,
    };
}

/// Geometry and timing of one cache level (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Capacity in bytes of one cache instance (one segment for L2).
    pub size: u64,
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Fetch granularity (sector size) in bytes; divides `line_size`.
    pub fetch_granularity: u32,
    /// Set associativity (ways). The constructor will shrink this to the
    /// largest divisor of the line count if needed.
    pub associativity: u32,
    /// End-to-end load latency (cycles) when a load *hits* this level.
    pub load_latency: u32,
    /// Number of independent instances per SM/CU (`None` = one per GPU,
    /// e.g. L2 segments are counted by [`CacheSpec::segments`] instead).
    pub amount_per_sm: Option<u32>,
    /// For GPU-level caches: number of independent segments on the GPU
    /// (e.g. A100 L2 = 2 × 20 MB). `1` for unsegmented caches.
    pub segments: u32,
    /// Achieved read bandwidth in GiB/s at the optimal launch config, if
    /// this level is bandwidth-benchmarked (higher-level caches only).
    pub read_bw_gibs: Option<f64>,
    /// Achieved write bandwidth in GiB/s, if benchmarked.
    pub write_bw_gibs: Option<f64>,
}

impl CacheSpec {
    /// Number of cache lines in one instance.
    pub fn lines(&self) -> u64 {
        self.size / self.line_size as u64
    }

    /// Sectors per line.
    pub fn sectors_per_line(&self) -> u32 {
        self.line_size / self.fetch_granularity
    }
}

/// Scratchpad (NVIDIA Shared Memory / AMD LDS) ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScratchpadSpec {
    /// Capacity in bytes per SM/CU.
    pub size: u64,
    /// Load latency in cycles.
    pub load_latency: u32,
}

/// Device (main) memory ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Total capacity in bytes.
    pub size: u64,
    /// Load latency in cycles.
    pub load_latency: u32,
    /// Achieved read bandwidth in GiB/s at the optimal launch config.
    pub read_bw_gibs: f64,
    /// Achieved write bandwidth in GiB/s at the optimal launch config.
    pub write_bw_gibs: f64,
}

/// Compute-resource ground truth (largely what `hipDeviceProp_t` exposes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Number of SMs (NVIDIA) or active CUs (AMD).
    pub num_sms: u32,
    /// CUDA cores / stream processors per SM/CU.
    pub cores_per_sm: u32,
    /// Threads per warp (32) / wavefront (64).
    pub warp_size: u32,
    /// Maximum resident blocks per SM/CU.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM/CU.
    pub max_threads_per_sm: u32,
    /// 32-bit registers per block.
    pub regs_per_block: u32,
    /// 32-bit registers per SM/CU.
    pub regs_per_sm: u32,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u32,
    /// Memory bus width in bits.
    pub bus_width_bits: u32,
    /// Compute capability / gfx arch string (e.g. "9.0", "gfx90a").
    pub compute_capability: String,
}

/// AMD-only: CU enablement and sL1d sharing layout.
///
/// Physical CU ids range over the full die; only `physical_ids` are active
/// (e.g. MI210 exposes 104 of 128). The scalar L1 data cache is shared by
/// consecutive groups of `sl1d_group_size` *physical* CUs, so an active CU
/// whose group partners are disabled has the sL1d to itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuLayout {
    /// Physical ids of the active CUs, indexed by logical CU id.
    pub physical_ids: Vec<u32>,
    /// Number of consecutive physical CUs sharing one sL1d.
    pub sl1d_group_size: u32,
    /// Total number of physical CUs on the die (active + disabled).
    pub physical_total: u32,
}

impl CuLayout {
    /// sL1d group id of a *logical* CU.
    pub fn sl1d_group_of(&self, logical_cu: usize) -> u32 {
        self.physical_ids[logical_cu] / self.sl1d_group_size
    }

    /// Logical CU ids sharing the sL1d with `logical_cu` (excluding itself).
    pub fn sl1d_partners(&self, logical_cu: usize) -> Vec<usize> {
        let group = self.sl1d_group_of(logical_cu);
        self.physical_ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != logical_cu && self.sl1d_group_of(i) == group)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Whether the NVIDIA L1/Texture/Readonly logical spaces map onto one
/// unified physical cache (true since Pascal) and whether Constant L1 is
/// part of that unified cache (never, on the GPUs in scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingLayout {
    /// L1 / Texture / Readonly are one physical cache.
    pub l1_tex_ro_unified: bool,
}

/// Full ground-truth description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. "H100 80GB HBM3".
    pub name: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Microarchitecture.
    pub microarch: Microarch,
    /// Compute resources.
    pub chip: ChipSpec,
    /// Per-cache-kind geometry. Which kinds are present depends on vendor:
    /// NVIDIA uses `L1/Texture/Readonly/ConstL1/ConstL15/L2`; AMD uses
    /// `VL1/SL1D/L2` and optionally `L3`.
    pub caches: Vec<(CacheKind, CacheSpec)>,
    /// Scratchpad (Shared Memory / LDS).
    pub scratchpad: ScratchpadSpec,
    /// Device memory.
    pub dram: DramSpec,
    /// NVIDIA physical-sharing layout (ignored on AMD).
    pub sharing: SharingLayout,
    /// AMD CU layout (None on NVIDIA).
    pub cu_layout: Option<CuLayout>,
    /// Address-translation ground truth (page size, L1/L2 TLB geometry
    /// and walk penalties). `#[serde(default)]` so configurations
    /// serialized before the TLB layer existed still deserialize (to "no
    /// TLB modeled").
    #[serde(default)]
    pub tlb: Option<TlbSpec>,
    /// Per-level replacement-policy overrides; levels not listed run
    /// exact LRU. `#[serde(default)]` (and skipped when empty) so
    /// configurations serialized before the policy zoo existed still
    /// round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub policies: Vec<(CacheKind, ReplacementPolicy)>,
    /// Hardware/driver quirks that make specific benchmarks fail, modeled
    /// after the three documented non-results in the paper's Section V.
    pub quirks: Quirks,
    /// Cycles a `clock()` read costs (included, constant, in measured
    /// latencies — paper footnote 7).
    pub clock_overhead_cycles: u32,
}

impl DeviceConfig {
    /// Looks up the spec of a cache kind, if the device has it.
    pub fn cache(&self, kind: CacheKind) -> Option<&CacheSpec> {
        self.caches.iter().find(|(k, _)| *k == kind).map(|(_, s)| s)
    }

    /// Total L2 size across segments, as the vendor API reports it.
    pub fn l2_total_size(&self) -> Option<u64> {
        self.cache(CacheKind::L2)
            .map(|s| s.size * s.segments as u64)
    }

    /// Number of XCDs (AMD accelerator complex dies), derived from the L2
    /// segment count on AMD devices.
    pub fn xcd_count(&self) -> Option<u32> {
        if self.vendor == Vendor::Amd {
            self.cache(CacheKind::L2).map(|s| s.segments)
        } else {
            None
        }
    }

    /// The replacement policy a cache level runs (exact LRU unless
    /// overridden in [`Self::policies`]).
    pub fn policy_of(&self, kind: CacheKind) -> ReplacementPolicy {
        self.policies
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
            .unwrap_or_default()
    }

    /// The L2 segment index an SM/CU is wired to — a pure function of the
    /// configuration (paper Sec. IV-F1 / VI-C observation 2): NVIDIA
    /// stripes SMs across segments, on AMD the segment is the CU's XCD.
    /// Shared by the memory subsystem's wiring and the contention
    /// validator, which must agree on the mapping by construction.
    pub fn l2_segment_of(&self, sm: usize) -> usize {
        let segments = self
            .cache(CacheKind::L2)
            .map(|s| s.segments.max(1))
            .unwrap_or(1) as usize;
        match (self.vendor, self.cu_layout.as_ref()) {
            (Vendor::Amd, Some(layout)) => {
                let per_xcd = (layout.physical_total as usize).div_ceil(segments);
                (layout.physical_ids[sm] as usize / per_xcd).min(segments - 1)
            }
            _ => sm % segments,
        }
    }
}

/// The maximum size of a constant-memory array on NVIDIA; benchmarks on the
/// constant path cannot test beyond this (paper Sec. III-C / footnote 10).
pub const CONSTANT_ARRAY_LIMIT: u64 = 64 * 1024;

/// Convenience: `n` KiB in bytes.
pub const fn kib(n: u64) -> u64 {
    n * 1024
}

/// Convenience: `n` MiB in bytes.
pub const fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

/// Convenience: `n` GiB in bytes.
pub const fn gib(n: u64) -> u64 {
    n * 1024 * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_spec_derived_quantities() {
        let spec = CacheSpec {
            size: kib(16),
            line_size: 64,
            fetch_granularity: 32,
            associativity: 4,
            load_latency: 100,
            amount_per_sm: Some(1),
            segments: 1,
            read_bw_gibs: None,
            write_bw_gibs: None,
        };
        assert_eq!(spec.lines(), 256);
        assert_eq!(spec.sectors_per_line(), 2);
    }

    #[test]
    fn cu_layout_partner_resolution() {
        // 6 physical CUs in groups of 2; physical id 3 is disabled.
        let layout = CuLayout {
            physical_ids: vec![0, 1, 2, 4, 5],
            sl1d_group_size: 2,
            physical_total: 6,
        };
        // logical 0 (phys 0) and logical 1 (phys 1) share group 0.
        assert_eq!(layout.sl1d_partners(0), vec![1]);
        // logical 2 (phys 2) lost its partner (phys 3 disabled).
        assert!(layout.sl1d_partners(2).is_empty());
        // logical 3 (phys 4) and logical 4 (phys 5) share group 2.
        assert_eq!(layout.sl1d_partners(3), vec![4]);
    }

    #[test]
    fn microarch_vendor_mapping() {
        assert_eq!(Microarch::Hopper.vendor(), Vendor::Nvidia);
        assert_eq!(Microarch::Cdna2.vendor(), Vendor::Amd);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(kib(2), 2048);
        assert_eq!(mib(1), 1 << 20);
        assert_eq!(gib(1), 1 << 30);
    }
}

//! Emulated vendor query APIs.
//!
//! MT4G "integrates these interfaces wherever possible to avoid unnecessary
//! benchmarking of information available elsewhere" (paper Sec. II-D). The
//! emulation reproduces the *availability matrix* of Table I:
//!
//! | Information                  | NVIDIA            | AMD                |
//! |------------------------------|-------------------|--------------------|
//! | Device properties            | `cudaDeviceProp`  | `hipDeviceProp_t`  |
//! | L2 total size                | API               | API                |
//! | Shared Memory / LDS size     | API               | API                |
//! | Device memory size           | API               | API                |
//! | L2/L3 cache line size        | —                 | KFD driver files   |
//! | L2/L3 size & amount (XCDs)   | —                 | HSA runtime        |
//! | Logical→physical CU ids      | —                 | API                |
//! | Everything else              | *benchmarked*     | *benchmarked*      |

use serde::{Deserialize, Serialize};

use crate::device::{CacheKind, Vendor};
use crate::gpu::Gpu;

/// The `hipDeviceProp_t` / `cudaDeviceProp` analogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProps {
    /// Marketing name.
    pub name: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Compute capability (NVIDIA, e.g. "9.0") or gfx arch (AMD).
    pub compute_capability: String,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u32,
    /// Memory bus width in bits.
    pub bus_width_bits: u32,
    /// Device memory size in bytes.
    pub total_mem_bytes: u64,
    /// Total L2 size in bytes (across all segments — the API hides the
    /// segmentation, which is exactly why the L2-segment benchmark exists).
    pub l2_size_bytes: u64,
    /// Shared Memory (NVIDIA) / LDS (AMD) size per SM/CU in bytes.
    pub shared_mem_per_sm_bytes: u64,
    /// Number of SMs / CUs.
    pub num_sms: u32,
    /// Warp / wavefront size.
    pub warp_size: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM/CU.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM/CU.
    pub max_blocks_per_sm: u32,
    /// Registers per block.
    pub regs_per_block: u32,
    /// Registers per SM/CU.
    pub regs_per_sm: u32,
}

/// `hipGetDeviceProperties` — available on both vendors.
pub fn device_props(gpu: &Gpu) -> DeviceProps {
    let c = &gpu.config;
    DeviceProps {
        name: c.name.clone(),
        vendor: c.vendor,
        compute_capability: c.chip.compute_capability.clone(),
        clock_mhz: c.chip.clock_mhz,
        mem_clock_mhz: c.chip.mem_clock_mhz,
        bus_width_bits: c.chip.bus_width_bits,
        total_mem_bytes: c.dram.size,
        l2_size_bytes: c.l2_total_size().unwrap_or(0),
        shared_mem_per_sm_bytes: c.scratchpad.size,
        num_sms: c.chip.num_sms,
        warp_size: c.chip.warp_size,
        max_threads_per_block: c.chip.max_threads_per_block,
        max_threads_per_sm: c.chip.max_threads_per_sm,
        max_blocks_per_sm: c.chip.max_blocks_per_sm,
        regs_per_block: c.chip.regs_per_block,
        regs_per_sm: c.chip.regs_per_sm,
    }
}

/// HSA runtime cache sizes — AMD only. Reports the GPU-level caches (L2
/// per-XCD size and L3 if present); the CU-level vL1/sL1d are *not* in the
/// HSA tables with useful granularity, so MT4G benchmarks them (Table I).
pub fn hsa_cache_sizes(gpu: &Gpu) -> Option<Vec<(CacheKind, u64)>> {
    if gpu.vendor() != Vendor::Amd || gpu.config.quirks.cache_info_apis_unavailable {
        return None;
    }
    let mut out = Vec::new();
    if let Some(l2) = gpu.config.cache(CacheKind::L2) {
        out.push((CacheKind::L2, l2.size));
    }
    if let Some(l3) = gpu.config.cache(CacheKind::L3) {
        out.push((CacheKind::L3, l3.size * l3.segments as u64));
    }
    Some(out)
}

/// KFD driver-file cache line sizes — AMD only (L2 and L3).
pub fn kfd_cache_line_sizes(gpu: &Gpu) -> Option<Vec<(CacheKind, u32)>> {
    if gpu.vendor() != Vendor::Amd || gpu.config.quirks.cache_info_apis_unavailable {
        return None;
    }
    let mut out = Vec::new();
    if let Some(l2) = gpu.config.cache(CacheKind::L2) {
        out.push((CacheKind::L2, l2.line_size));
    }
    if let Some(l3) = gpu.config.cache(CacheKind::L3) {
        out.push((CacheKind::L3, l3.line_size));
    }
    Some(out)
}

/// Number of XCDs (accelerator complex dies) — AMD only. MT4G assumes one
/// L2 segment per XCD (paper Sec. IV-F1). Part of the same HSA/KFD cache
/// description surface the hostile environments lock down, so the L2
/// *amount* honestly degrades to "no result" there instead of leaking
/// from the API.
pub fn xcd_count(gpu: &Gpu) -> Option<u32> {
    if gpu.config.quirks.cache_info_apis_unavailable {
        return None;
    }
    gpu.config.xcd_count()
}

/// Page size of the driver's large-page allocations, in bytes — the
/// translation granule the TLB-reach benchmark chases with. A driver
/// constant on both vendors (like the device properties), but part of the
/// query surface a locked-down hostile environment withholds
/// ([`crate::quirks::Quirks::page_size_api_unavailable`]): without it the
/// TLB rows honestly degrade to "no result" instead of guessing a stride.
pub fn page_size(gpu: &Gpu) -> Option<u64> {
    if gpu.config.quirks.page_size_api_unavailable {
        return None;
    }
    gpu.config.tlb.map(|t| t.page_bytes)
}

/// Logical→physical CU id mapping — AMD only (paper Sec. III-B).
pub fn logical_to_physical_cu(gpu: &Gpu) -> Option<Vec<u32>> {
    if gpu.config.quirks.cu_ids_unavailable {
        return None;
    }
    gpu.config
        .cu_layout
        .as_ref()
        .map(|l| l.physical_ids.clone())
}

/// Number of L3 instances — AMD only, via API (Table I).
pub fn l3_amount(gpu: &Gpu) -> Option<u32> {
    if gpu.vendor() != Vendor::Amd || gpu.config.quirks.cache_info_apis_unavailable {
        return None;
    }
    gpu.config.cache(CacheKind::L3).map(|s| s.segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn nvidia_props_hide_amd_interfaces() {
        let gpu = presets::h100_80();
        let props = device_props(&gpu);
        assert_eq!(props.vendor, Vendor::Nvidia);
        assert_eq!(props.l2_size_bytes, 50 * 1024 * 1024);
        assert!(hsa_cache_sizes(&gpu).is_none());
        assert!(kfd_cache_line_sizes(&gpu).is_none());
        assert!(xcd_count(&gpu).is_none());
        assert!(logical_to_physical_cu(&gpu).is_none());
    }

    #[test]
    fn amd_interfaces_report_l2_info() {
        let gpu = presets::mi210();
        let props = device_props(&gpu);
        assert_eq!(props.vendor, Vendor::Amd);
        assert_eq!(props.warp_size, 64);
        let sizes = hsa_cache_sizes(&gpu).unwrap();
        assert!(sizes.contains(&(CacheKind::L2, 8 * 1024 * 1024)));
        let lines = kfd_cache_line_sizes(&gpu).unwrap();
        assert!(lines.iter().any(|&(k, sz)| k == CacheKind::L2 && sz == 128));
        assert_eq!(xcd_count(&gpu), Some(1));
        let map = logical_to_physical_cu(&gpu).unwrap();
        assert_eq!(map.len(), 104);
    }

    #[test]
    fn mi300x_reports_multiple_xcds_and_l3() {
        let gpu = presets::mi300x();
        assert_eq!(xcd_count(&gpu), Some(8));
        assert_eq!(l3_amount(&gpu), Some(1));
        let sizes = hsa_cache_sizes(&gpu).unwrap();
        assert!(sizes.iter().any(|&(k, _)| k == CacheKind::L3));
    }

    /// The hostile quirk removes the whole HSA/KFD cache-description
    /// surface: sizes, line sizes, L3 amount, *and* the XCD count that
    /// backs the L2 amount.
    #[test]
    fn locked_down_apis_hide_every_cache_table() {
        let gpu = presets::mi210_hostile();
        assert!(gpu.config.quirks.cache_info_apis_unavailable);
        assert!(hsa_cache_sizes(&gpu).is_none());
        assert!(kfd_cache_line_sizes(&gpu).is_none());
        assert!(l3_amount(&gpu).is_none());
        assert!(xcd_count(&gpu).is_none());
        assert!(logical_to_physical_cu(&gpu).is_none());
    }
}

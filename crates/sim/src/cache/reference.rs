//! The original `Vec<Vec<Line>>` / map+`BTreeMap` sectored-cache
//! implementation, retained verbatim as a differential-testing oracle.
//!
//! The flat tag store in [`super`] must produce *bit-identical* behaviour
//! — the same [`Access`] sequence, hit/miss counters and residency for any
//! access stream — because every measured value of the simulator flows
//! through it. The property test `flat_store_matches_reference` in
//! `crates/sim/tests/prop.rs` drives both implementations with random
//! streams and asserts equivalence; keep this module in sync with nothing:
//! it is frozen on purpose.

use std::collections::BTreeMap;

use super::Access;

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    /// Valid bit per sector. Lines have at most 64 sectors by construction.
    valid_sectors: u64,
    /// Monotonic timestamp of last use, for LRU.
    last_use: u64,
}

#[derive(Debug, Clone)]
struct FaLine {
    valid_sectors: u64,
    last_use: u64,
}

#[derive(Debug)]
enum Organization {
    SetAssociative {
        sets: Vec<Vec<Line>>,
        num_sets: u64,
        ways: u32,
    },
    FullyAssociative {
        /// line address -> state. Keyed lookups only (eviction order
        /// comes from the `lru` tree), stored ordered so the container
        /// is deterministic by construction (`det-hash` lint).
        lines: BTreeMap<u64, FaLine>,
        /// last_use tick -> line address (LRU order; ticks are unique)
        lru: BTreeMap<u64, u64>,
        capacity_lines: u64,
    },
}

/// The pre-flat-store sectored cache (true-LRU, two organisations) — see
/// the module docs for why it is kept.
#[derive(Debug)]
pub struct ReferenceSectoredCache {
    line_size: u64,
    sector_size: u64,
    org: Organization,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ReferenceSectoredCache {
    /// Builds a cache with explicit geometry; same contract as
    /// [`super::SectoredCache::new`].
    pub fn new(size: u64, line_size: u64, sector_size: u64, ways: u32) -> Self {
        assert!(size > 0 && line_size > 0 && sector_size > 0);
        assert_eq!(
            size % line_size,
            0,
            "cache size {size} must be a multiple of the line size {line_size}"
        );
        assert_eq!(
            line_size % sector_size,
            0,
            "line size {line_size} must be a multiple of the sector size {sector_size}"
        );
        let sectors_per_line = (line_size / sector_size) as u32;
        assert!(
            sectors_per_line <= 64,
            "at most 64 sectors per line supported"
        );
        let total_lines = size / line_size;
        let org = if ways as u64 >= total_lines {
            Organization::FullyAssociative {
                lines: BTreeMap::new(),
                lru: BTreeMap::new(),
                capacity_lines: total_lines,
            }
        } else {
            let mut ways = ways.max(1) as u64;
            while !total_lines.is_multiple_of(ways) {
                ways -= 1;
            }
            let num_sets = total_lines / ways;
            Organization::SetAssociative {
                sets: vec![Vec::new(); num_sets as usize],
                num_sets,
                ways: ways as u32,
            }
        };
        ReferenceSectoredCache {
            line_size,
            sector_size,
            org,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the fully-associative organisation was selected.
    pub fn is_fully_associative(&self) -> bool {
        matches!(self.org, Organization::FullyAssociative { .. })
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Invalidates all contents (and keeps the counters).
    pub fn flush(&mut self) {
        match &mut self.org {
            Organization::SetAssociative { sets, .. } => {
                for set in sets {
                    set.clear();
                }
            }
            Organization::FullyAssociative { lines, lru, .. } => {
                lines.clear();
                lru.clear();
            }
        }
    }

    /// Performs an access at byte address `addr`, allocating on miss —
    /// the original algorithm, verbatim.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let tick = self.tick;
        let line_addr = addr / self.line_size;
        let sector_bit = 1u64 << ((addr % self.line_size) / self.sector_size);

        let result = match &mut self.org {
            Organization::SetAssociative {
                sets,
                num_sets,
                ways,
                ..
            } => {
                let set_idx = (line_addr % *num_sets) as usize;
                let tag = line_addr / *num_sets;
                let set = &mut sets[set_idx];
                if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
                    line.last_use = tick;
                    if line.valid_sectors & sector_bit != 0 {
                        Access::Hit
                    } else {
                        line.valid_sectors |= sector_bit;
                        Access::SectorMiss
                    }
                } else {
                    if set.len() >= *ways as usize {
                        let lru = set
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, l)| l.last_use)
                            .map(|(i, _)| i)
                            .expect("non-empty set");
                        set.swap_remove(lru);
                    }
                    set.push(Line {
                        tag,
                        valid_sectors: sector_bit,
                        last_use: tick,
                    });
                    Access::LineMiss
                }
            }
            Organization::FullyAssociative {
                lines,
                lru,
                capacity_lines,
            } => {
                if let Some(state) = lines.get_mut(&line_addr) {
                    lru.remove(&state.last_use);
                    state.last_use = tick;
                    lru.insert(tick, line_addr);
                    if state.valid_sectors & sector_bit != 0 {
                        Access::Hit
                    } else {
                        state.valid_sectors |= sector_bit;
                        Access::SectorMiss
                    }
                } else {
                    if lines.len() as u64 >= *capacity_lines {
                        let (&victim_tick, &victim_line) =
                            lru.iter().next().expect("cache full implies LRU entry");
                        lru.remove(&victim_tick);
                        lines.remove(&victim_line);
                    }
                    lines.insert(
                        line_addr,
                        FaLine {
                            valid_sectors: sector_bit,
                            last_use: tick,
                        },
                    );
                    lru.insert(tick, line_addr);
                    Access::LineMiss
                }
            }
        };
        if result.is_hit() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        result
    }

    /// Peeks whether `addr`'s sector is resident without touching LRU or
    /// allocating.
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr / self.line_size;
        let sector_bit = 1u64 << ((addr % self.line_size) / self.sector_size);
        match &self.org {
            Organization::SetAssociative { sets, num_sets, .. } => {
                let set_idx = (line_addr % *num_sets) as usize;
                let tag = line_addr / *num_sets;
                sets[set_idx]
                    .iter()
                    .any(|l| l.tag == tag && l.valid_sectors & sector_bit != 0)
            }
            Organization::FullyAssociative { lines, .. } => lines
                .get(&line_addr)
                .map(|s| s.valid_sectors & sector_bit != 0)
                .unwrap_or(false),
        }
    }
}

// --- the per-policy differential oracle ---

use super::policy::Xorshift64;
use super::ReplacementPolicy;

#[derive(Debug, Clone)]
struct PolLine {
    /// Full line address (no tag/set split — the set is recomputed).
    tag: u64,
    valid_sectors: u64,
}

/// Naive per-policy sectored cache: the differential oracle for every
/// [`ReplacementPolicy`] engine in [`super`].
///
/// One deliberately simple representation covers both organisations — a
/// fully-associative cache is a single set whose way count equals the
/// line capacity. Ways fill densely from index 0 and eviction replaces
/// the victim's way *in place*, which makes way indices correspond 1:1 to
/// the packed engine's lanes / arena slots — required for the random
/// policy (victim = same index from the same [`Xorshift64`] stream) and
/// the PLRU tree (leaf = way index), and harmless for the stamp-ordered
/// policies. Everything is an O(ways) scan; use small geometries.
#[derive(Debug)]
pub struct PolicyReferenceCache {
    line_size: u64,
    sector_size: u64,
    policy: ReplacementPolicy,
    num_sets: u64,
    ways: usize,
    sets: Vec<Vec<PolLine>>,
    /// Per set × way: last-use stamp (LRU and SLRU ordering).
    stamps: Vec<Vec<u64>>,
    /// Per set × way: SLRU protected-segment membership.
    protected: Vec<Vec<bool>>,
    /// Per set: PLRU internal-node bits (`true` = victim walk goes right).
    plru: Vec<Vec<bool>>,
    /// PLRU leaf count: `ways` rounded up to a power of two.
    padded: u64,
    /// SLRU protected capacity: half the ways.
    prot_cap: usize,
    rng: Xorshift64,
    tick: u64,
    hits: u64,
    misses: u64,
}

fn plru_touch_ref(bits: &mut [bool], padded: u64, way: u64) {
    let mut node = padded + way;
    while node > 1 {
        let parent = node >> 1;
        // Point away from the touched child: left child => walk right.
        bits[(parent - 1) as usize] = node & 1 == 0;
        node = parent;
    }
}

fn plru_victim_ref(bits: &[bool], padded: u64, valid: u64) -> usize {
    let mut node = 1u64;
    let mut lo = 0u64;
    let mut span = padded;
    while span > 1 {
        span >>= 1;
        let right = bits[(node - 1) as usize] && lo + span < valid;
        node = (node << 1) | right as u64;
        if right {
            lo += span;
        }
    }
    lo as usize
}

impl PolicyReferenceCache {
    /// Builds a cache with explicit geometry; same contract as
    /// [`super::SectoredCache::new_with_policy`].
    pub fn new(
        size: u64,
        line_size: u64,
        sector_size: u64,
        ways: u32,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(size > 0 && line_size > 0 && sector_size > 0);
        assert_eq!(size % line_size, 0);
        assert_eq!(line_size % sector_size, 0);
        assert!((line_size / sector_size) <= 64);
        let total_lines = size / line_size;
        let (num_sets, ways) = if ways as u64 >= total_lines {
            (1, total_lines)
        } else {
            let mut ways = ways.max(1) as u64;
            while !total_lines.is_multiple_of(ways) {
                ways -= 1;
            }
            (total_lines / ways, ways)
        };
        let padded = ways.next_power_of_two();
        PolicyReferenceCache {
            line_size,
            sector_size,
            policy,
            num_sets,
            ways: ways as usize,
            sets: vec![Vec::new(); num_sets as usize],
            stamps: vec![vec![0; ways as usize]; num_sets as usize],
            protected: vec![vec![false; ways as usize]; num_sets as usize],
            plru: vec![vec![false; (padded - 1) as usize]; num_sets as usize],
            padded,
            prot_cap: (ways / 2) as usize,
            rng: Xorshift64::for_geometry(total_lines),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The policy this oracle simulates.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Invalidates all contents and recency state (and keeps the
    /// counters). The random victim stream survives, as in the engine.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        for v in &mut self.stamps {
            v.iter_mut().for_each(|s| *s = 0);
        }
        for v in &mut self.protected {
            v.iter_mut().for_each(|p| *p = false);
        }
        for v in &mut self.plru {
            v.iter_mut().for_each(|b| *b = false);
        }
    }

    fn touch(&mut self, set: usize, way: usize, tick: u64) {
        match self.policy {
            ReplacementPolicy::Lru => self.stamps[set][way] = tick,
            ReplacementPolicy::TreePlru => {
                plru_touch_ref(&mut self.plru[set], self.padded, way as u64)
            }
            ReplacementPolicy::Slru => {
                self.stamps[set][way] = tick;
                if !self.protected[set][way] && self.prot_cap > 0 {
                    // Promote; on overflow demote the protected-LRU back
                    // to probation as its MRU.
                    self.protected[set][way] = true;
                    let count = self.protected[set].iter().filter(|&&p| p).count();
                    if count > self.prot_cap {
                        let demote = (0..self.ways)
                            .filter(|&w| self.protected[set][w])
                            .min_by_key(|&w| self.stamps[set][w])
                            .expect("overflowing protected segment");
                        self.protected[set][demote] = false;
                        self.stamps[set][demote] = tick;
                    }
                }
            }
            ReplacementPolicy::Random | ReplacementPolicy::Bypass => {}
        }
    }

    /// Victim way for a full set, or `None` to skip allocation (bypass).
    fn victim(&mut self, set: usize) -> Option<usize> {
        match self.policy {
            ReplacementPolicy::Lru => (0..self.ways).min_by_key(|&w| self.stamps[set][w]),
            ReplacementPolicy::TreePlru => Some(plru_victim_ref(
                &self.plru[set],
                self.padded,
                self.ways as u64,
            )),
            ReplacementPolicy::Slru => (0..self.ways)
                .filter(|&w| !self.protected[set][w])
                .min_by_key(|&w| self.stamps[set][w])
                .or_else(|| (0..self.ways).min_by_key(|&w| self.stamps[set][w])),
            ReplacementPolicy::Random => Some(self.rng.below(self.ways as u64) as usize),
            ReplacementPolicy::Bypass => None,
        }
    }

    fn fill(&mut self, set: usize, way: usize, tick: u64) {
        match self.policy {
            ReplacementPolicy::Lru => self.stamps[set][way] = tick,
            ReplacementPolicy::TreePlru => {
                plru_touch_ref(&mut self.plru[set], self.padded, way as u64)
            }
            ReplacementPolicy::Slru => {
                // New lines enter probation.
                self.stamps[set][way] = tick;
                self.protected[set][way] = false;
            }
            ReplacementPolicy::Random | ReplacementPolicy::Bypass => {}
        }
    }

    /// Performs an access at byte address `addr`, allocating on miss.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let tick = self.tick;
        let line_addr = addr / self.line_size;
        let sector_bit = 1u64 << ((addr % self.line_size) / self.sector_size);
        let set = (line_addr % self.num_sets) as usize;

        let result = if let Some(way) = self.sets[set].iter().position(|l| l.tag == line_addr) {
            self.touch(set, way, tick);
            let line = &mut self.sets[set][way];
            if line.valid_sectors & sector_bit != 0 {
                Access::Hit
            } else {
                line.valid_sectors |= sector_bit;
                Access::SectorMiss
            }
        } else if self.sets[set].len() < self.ways {
            // Ways fill densely from 0 (push = lowest free index).
            let way = self.sets[set].len();
            self.sets[set].push(PolLine {
                tag: line_addr,
                valid_sectors: sector_bit,
            });
            self.fill(set, way, tick);
            Access::LineMiss
        } else {
            match self.victim(set) {
                None => Access::LineMiss, // bypass: no allocation
                Some(way) => {
                    self.sets[set][way] = PolLine {
                        tag: line_addr,
                        valid_sectors: sector_bit,
                    };
                    self.fill(set, way, tick);
                    Access::LineMiss
                }
            }
        };
        if result.is_hit() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        result
    }

    /// Peeks whether `addr`'s sector is resident without touching recency
    /// state or allocating.
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr / self.line_size;
        let sector_bit = 1u64 << ((addr % self.line_size) / self.sector_size);
        let set = (line_addr % self.num_sets) as usize;
        self.sets[set]
            .iter()
            .any(|l| l.tag == line_addr && l.valid_sectors & sector_bit != 0)
    }
}

#[cfg(test)]
mod policy_oracle_tests {
    use super::*;

    /// The per-policy oracle's LRU arm must agree with the frozen
    /// original oracle — anchoring the whole zoo to the historical
    /// behaviour through one shared baseline.
    #[test]
    fn lru_arm_matches_the_frozen_oracle() {
        for ways in [2u32, 4, u32::MAX] {
            let mut frozen = ReferenceSectoredCache::new(1024, 64, 32, ways);
            let mut zoo = PolicyReferenceCache::new(1024, 64, 32, ways, ReplacementPolicy::Lru);
            for i in 0..500u64 {
                let addr = (i * 97 + i / 5 * 31) % 4096;
                assert_eq!(frozen.access(addr), zoo.access(addr), "step {i}");
                assert_eq!(frozen.probe(addr ^ 64), zoo.probe(addr ^ 64));
            }
            assert_eq!(frozen.stats(), zoo.stats());
        }
    }
}

//! The original `Vec<Vec<Line>>` / `HashMap`+`BTreeMap` sectored-cache
//! implementation, retained verbatim as a differential-testing oracle.
//!
//! The flat tag store in [`super`] must produce *bit-identical* behaviour
//! — the same [`Access`] sequence, hit/miss counters and residency for any
//! access stream — because every measured value of the simulator flows
//! through it. The property test `flat_store_matches_reference` in
//! `crates/sim/tests/prop.rs` drives both implementations with random
//! streams and asserts equivalence; keep this module in sync with nothing:
//! it is frozen on purpose.

use std::collections::{BTreeMap, HashMap};

use super::Access;

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    /// Valid bit per sector. Lines have at most 64 sectors by construction.
    valid_sectors: u64,
    /// Monotonic timestamp of last use, for LRU.
    last_use: u64,
}

#[derive(Debug, Clone)]
struct FaLine {
    valid_sectors: u64,
    last_use: u64,
}

#[derive(Debug)]
enum Organization {
    SetAssociative {
        sets: Vec<Vec<Line>>,
        num_sets: u64,
        ways: u32,
    },
    FullyAssociative {
        /// line address -> state
        lines: HashMap<u64, FaLine>,
        /// last_use tick -> line address (LRU order; ticks are unique)
        lru: BTreeMap<u64, u64>,
        capacity_lines: u64,
    },
}

/// The pre-flat-store sectored cache (true-LRU, two organisations) — see
/// the module docs for why it is kept.
#[derive(Debug)]
pub struct ReferenceSectoredCache {
    line_size: u64,
    sector_size: u64,
    org: Organization,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ReferenceSectoredCache {
    /// Builds a cache with explicit geometry; same contract as
    /// [`super::SectoredCache::new`].
    pub fn new(size: u64, line_size: u64, sector_size: u64, ways: u32) -> Self {
        assert!(size > 0 && line_size > 0 && sector_size > 0);
        assert_eq!(
            size % line_size,
            0,
            "cache size {size} must be a multiple of the line size {line_size}"
        );
        assert_eq!(
            line_size % sector_size,
            0,
            "line size {line_size} must be a multiple of the sector size {sector_size}"
        );
        let sectors_per_line = (line_size / sector_size) as u32;
        assert!(
            sectors_per_line <= 64,
            "at most 64 sectors per line supported"
        );
        let total_lines = size / line_size;
        let org = if ways as u64 >= total_lines {
            Organization::FullyAssociative {
                lines: HashMap::new(),
                lru: BTreeMap::new(),
                capacity_lines: total_lines,
            }
        } else {
            let mut ways = ways.max(1) as u64;
            while !total_lines.is_multiple_of(ways) {
                ways -= 1;
            }
            let num_sets = total_lines / ways;
            Organization::SetAssociative {
                sets: vec![Vec::new(); num_sets as usize],
                num_sets,
                ways: ways as u32,
            }
        };
        ReferenceSectoredCache {
            line_size,
            sector_size,
            org,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the fully-associative organisation was selected.
    pub fn is_fully_associative(&self) -> bool {
        matches!(self.org, Organization::FullyAssociative { .. })
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Invalidates all contents (and keeps the counters).
    pub fn flush(&mut self) {
        match &mut self.org {
            Organization::SetAssociative { sets, .. } => {
                for set in sets {
                    set.clear();
                }
            }
            Organization::FullyAssociative { lines, lru, .. } => {
                lines.clear();
                lru.clear();
            }
        }
    }

    /// Performs an access at byte address `addr`, allocating on miss —
    /// the original algorithm, verbatim.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let tick = self.tick;
        let line_addr = addr / self.line_size;
        let sector_bit = 1u64 << ((addr % self.line_size) / self.sector_size);

        let result = match &mut self.org {
            Organization::SetAssociative {
                sets,
                num_sets,
                ways,
                ..
            } => {
                let set_idx = (line_addr % *num_sets) as usize;
                let tag = line_addr / *num_sets;
                let set = &mut sets[set_idx];
                if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
                    line.last_use = tick;
                    if line.valid_sectors & sector_bit != 0 {
                        Access::Hit
                    } else {
                        line.valid_sectors |= sector_bit;
                        Access::SectorMiss
                    }
                } else {
                    if set.len() >= *ways as usize {
                        let lru = set
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, l)| l.last_use)
                            .map(|(i, _)| i)
                            .expect("non-empty set");
                        set.swap_remove(lru);
                    }
                    set.push(Line {
                        tag,
                        valid_sectors: sector_bit,
                        last_use: tick,
                    });
                    Access::LineMiss
                }
            }
            Organization::FullyAssociative {
                lines,
                lru,
                capacity_lines,
            } => {
                if let Some(state) = lines.get_mut(&line_addr) {
                    lru.remove(&state.last_use);
                    state.last_use = tick;
                    lru.insert(tick, line_addr);
                    if state.valid_sectors & sector_bit != 0 {
                        Access::Hit
                    } else {
                        state.valid_sectors |= sector_bit;
                        Access::SectorMiss
                    }
                } else {
                    if lines.len() as u64 >= *capacity_lines {
                        let (&victim_tick, &victim_line) =
                            lru.iter().next().expect("cache full implies LRU entry");
                        lru.remove(&victim_tick);
                        lines.remove(&victim_line);
                    }
                    lines.insert(
                        line_addr,
                        FaLine {
                            valid_sectors: sector_bit,
                            last_use: tick,
                        },
                    );
                    lru.insert(tick, line_addr);
                    Access::LineMiss
                }
            }
        };
        if result.is_hit() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        result
    }

    /// Peeks whether `addr`'s sector is resident without touching LRU or
    /// allocating.
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr / self.line_size;
        let sector_bit = 1u64 << ((addr % self.line_size) / self.sector_size);
        match &self.org {
            Organization::SetAssociative { sets, num_sets, .. } => {
                let set_idx = (line_addr % *num_sets) as usize;
                let tag = line_addr / *num_sets;
                sets[set_idx]
                    .iter()
                    .any(|l| l.tag == tag && l.valid_sectors & sector_bit != 0)
            }
            Organization::FullyAssociative { lines, .. } => lines
                .get(&line_addr)
                .map(|s| s.valid_sectors & sector_bit != 0)
                .unwrap_or(false),
        }
    }
}

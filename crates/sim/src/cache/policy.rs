//! The replacement-policy zoo: which resident line a cache level evicts.
//!
//! Real GPU caches are not exact true-LRU — L1s are commonly tree-PLRU,
//! some levels behave like segmented LRU and streaming workloads can
//! bypass allocation entirely. The discovery methodology only generalizes
//! if the simulator can *plant* such evictors per level and the suite can
//! fingerprint them blind, so eviction is promoted from a hard-coded LRU
//! to a per-level strategy:
//!
//! * [`ReplacementPolicy::Lru`] — exact true-LRU, the default. Behaviour
//!   is byte-identical to the historical engine (pinned by the reference
//!   oracle and the differential proptests), so every pre-existing report
//!   stays byte-stable.
//! * [`ReplacementPolicy::TreePlru`] — tree pseudo-LRU: one bit per
//!   internal node of a binary tree over the ways; a touch points every
//!   ancestor away from the touched leaf, the victim walk follows the
//!   bits. Non-power-of-two way counts use the next power of two with the
//!   invalid tail leaves skipped during the walk.
//! * [`ReplacementPolicy::Slru`] — segmented LRU: new lines enter a
//!   *probation* segment; a re-reference promotes to a *protected*
//!   segment capped at half the ways (protected overflow demotes the
//!   protected-LRU back to probation-MRU). Victims come from probation
//!   first — the scan-resistant shape of the SLRU/TinyLFU family.
//! * [`ReplacementPolicy::Random`] — uniform random victim from a seeded
//!   xorshift64* stream. Deterministic per cache instance (the seed is
//!   derived from the geometry), but repeated identical probe trials
//!   observe *different* eviction orders because the stream advances —
//!   exactly the signature the policy-discovery benchmark keys on.
//! * [`ReplacementPolicy::Bypass`] — streaming/no-allocate mode: lines
//!   allocate only while the cache (set) has free ways; once full, new
//!   lines bypass the cache entirely and resident lines are never
//!   evicted until a flush.
//!
//! The packed engines in [`super`] and the naive per-policy oracles in
//! [`super::reference`] implement the *same* spec; the per-policy
//! differential proptests in `crates/sim/tests/prop.rs` prove them
//! hit/miss/eviction-for-eviction equivalent.

use serde::{Deserialize, Serialize};

/// Which replacement policy a cache level runs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Exact true-LRU (the default; behaviour of the historical engine).
    #[default]
    Lru,
    /// Tree pseudo-LRU (one bit per internal tree node).
    TreePlru,
    /// Segmented LRU (probation/protected, protected capped at half).
    Slru,
    /// Seeded uniform-random victim.
    Random,
    /// Streaming/no-allocate once full.
    Bypass,
}

impl ReplacementPolicy {
    /// All policies, in a stable order (used by the discovery classifier
    /// and the test matrices).
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Slru,
        ReplacementPolicy::Random,
        ReplacementPolicy::Bypass,
    ];

    /// Stable lower-case label (CLI/report spelling).
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Slru => "slru",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::Bypass => "bypass",
        }
    }

    /// Parses a [`Self::label`] spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        ReplacementPolicy::ALL
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The deterministic RNG behind [`ReplacementPolicy::Random`]: xorshift64*
/// with a geometry-derived seed, so a cache instance's victim stream is
/// bit-reproducible across runs, jobs and shards (every fork rebuilds the
/// hierarchy and restarts the stream) while consecutive probe trials
/// within one run observe different victims.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Seeds the stream from the cache geometry. Seedless of any external
    /// entropy on purpose — the simulation must be bit-reproducible.
    pub fn for_geometry(capacity_lines: u64) -> Self {
        // splitmix64 finalizer over a fixed tag, never zero.
        let mut z = (capacity_lines ^ 0x5EED_0CAC_4E00_0E71).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Xorshift64 { state: z.max(1) }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n` (n > 0) by modulo — the tiny bias is
    /// irrelevant for victim selection and keeps the oracle trivial.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(p.label()), Some(p));
            assert_eq!(ReplacementPolicy::parse(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(ReplacementPolicy::parse("fifo"), None);
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn rng_is_deterministic_per_geometry() {
        let mut a = Xorshift64::for_geometry(1904);
        let mut b = Xorshift64::for_geometry(1904);
        let mut c = Xorshift64::for_geometry(256);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same geometry, same stream");
        assert_ne!(xs, zs, "different geometry, different stream");
    }

    #[test]
    fn serde_round_trips_and_defaults() {
        let json = serde_json::to_string(&ReplacementPolicy::TreePlru).unwrap();
        let back: ReplacementPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ReplacementPolicy::TreePlru);
    }
}

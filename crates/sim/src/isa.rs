//! A minimal kernel ISA mirroring the PTX / AMDGCN snippets the real MT4G
//! inlines into its HIP kernels (paper Listings 1 and 2).
//!
//! The p-chase step the paper shows is literally:
//!
//! ```text
//! mov.u32  %0, %%clock;            // start = clock()
//! ld.global.ca.u32 %1, [%3];       // index = *addr
//! st.shared.u32 [smem_ptr64], %1;  // shared-mem store of the result
//! mov.u32  %2, %%clock;            // end = clock()
//! ```
//!
//! (and the AMDGCN equivalent with `s_memtime` and `s_waitcnt` fences).
//! The [`KernelBuilder`] emits exactly this structure; the executor in
//! [`crate::gpu`] interprets it against the simulated memory hierarchy with
//! a cycle-accurate clock register.

use crate::device::{LoadFlags, MemorySpace, Vendor};
use serde::{Deserialize, Serialize};

/// A virtual register index. Like PTX, the register file is unbounded.
pub type Reg = usize;

/// One instruction of the mini ISA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = clock()` — `mov.u32 %r, %%clock` / `s_memtime`.
    ReadClock(Reg),
    /// Dependent load: `dst = *[addr]` through `space` with `flags`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the byte address.
        addr: Reg,
        /// Logical memory space of the access.
        space: MemorySpace,
        /// Cache-policy flags (`.ca`/`.cg`/GLC...).
        flags: LoadFlags,
    },
    /// `st.shared` of a register — costs a couple of cycles, no cache
    /// interaction (the scratchpad is not modeled as a cache).
    StoreShared {
        /// Register whose value is stored.
        src: Reg,
    },
    /// `s_waitcnt`-style memory fence; timing no-op in our in-order model.
    Fence,
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a + b`.
    Add {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `dst = src * imm` — used to scale a p-chase index to a byte offset.
    MulImm {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Immediate multiplier.
        imm: u64,
    },
    /// `dst = end - start`; the measured latency of one load.
    Sub {
        /// Destination register.
        dst: Reg,
        /// Minuend register.
        a: Reg,
        /// Subtrahend register.
        b: Reg,
    },
    /// Appends the value of `src` to the kernel's record buffer, up to the
    /// executor's record cap (the paper stores only the first N latencies).
    Record {
        /// Register whose value is recorded.
        src: Reg,
    },
    /// Decrements `counter`; jumps to absolute instruction index `target`
    /// while it stays non-zero. The only control flow the benchmarks need.
    BranchDecNz {
        /// Loop counter register.
        counter: Reg,
        /// Absolute jump target (instruction index).
        target: usize,
    },
}

/// A compiled kernel: a flat instruction sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Kernel {
    /// Instruction stream.
    pub instrs: Vec<Instr>,
    /// Number of registers used (executor allocates this many).
    pub num_regs: usize,
}

/// Builds the benchmark kernels, hiding vendor differences exactly the way
/// HIP + inline assembly does in the real tool.
#[derive(Debug)]
pub struct KernelBuilder {
    vendor: Vendor,
    instrs: Vec<Instr>,
    next_reg: Reg,
}

impl KernelBuilder {
    /// A builder targeting `vendor` (controls fence emission).
    pub fn new(vendor: Vendor) -> Self {
        KernelBuilder {
            vendor,
            instrs: Vec::new(),
            next_reg: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        self.next_reg += 1;
        self.next_reg - 1
    }

    /// Emits `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.instrs.push(Instr::MovImm { dst, imm });
        self
    }

    /// Current instruction index — a branch target for loops.
    pub fn label(&self) -> usize {
        self.instrs.len()
    }

    /// Emits one *timed* p-chase step (paper Listings 1/2):
    /// `start=clock(); idx=*[addr]; st.shared idx; end=clock();
    /// lat=end-start; record lat; addr=base+idx*stride`.
    ///
    /// `idx_reg` receives the loaded index; `addr_reg` is updated for the
    /// next step.
    #[allow(clippy::too_many_arguments)]
    pub fn pchase_timed_step(
        &mut self,
        addr_reg: Reg,
        idx_reg: Reg,
        base_reg: Reg,
        elem_bytes: u64,
        space: MemorySpace,
        flags: LoadFlags,
        scratch: &mut PchaseScratch,
    ) -> &mut Self {
        if self.vendor == Vendor::Amd {
            // s_waitcnt lgkmcnt(0); s_waitcnt vmcnt(0)
            self.instrs.push(Instr::Fence);
            self.instrs.push(Instr::Fence);
        }
        self.instrs.push(Instr::ReadClock(scratch.start));
        self.instrs.push(Instr::Load {
            dst: idx_reg,
            addr: addr_reg,
            space,
            flags,
        });
        match self.vendor {
            Vendor::Nvidia => self.instrs.push(Instr::StoreShared { src: idx_reg }),
            Vendor::Amd => {
                self.instrs.push(Instr::Fence);
                self.instrs.push(Instr::Fence);
            }
        }
        self.instrs.push(Instr::ReadClock(scratch.end));
        self.instrs.push(Instr::Sub {
            dst: scratch.lat,
            a: scratch.end,
            b: scratch.start,
        });
        self.instrs.push(Instr::Record { src: scratch.lat });
        self.advance_pchase_addr(addr_reg, idx_reg, base_reg, elem_bytes);
        self
    }

    /// Emits one *untimed* p-chase step (warm-up pass).
    pub fn pchase_untimed_step(
        &mut self,
        addr_reg: Reg,
        idx_reg: Reg,
        base_reg: Reg,
        elem_bytes: u64,
        space: MemorySpace,
        flags: LoadFlags,
    ) -> &mut Self {
        self.instrs.push(Instr::Load {
            dst: idx_reg,
            addr: addr_reg,
            space,
            flags,
        });
        self.advance_pchase_addr(addr_reg, idx_reg, base_reg, elem_bytes);
        self
    }

    fn advance_pchase_addr(&mut self, addr_reg: Reg, idx_reg: Reg, base_reg: Reg, elem: u64) {
        // addr = base + idx * elem_bytes
        self.instrs.push(Instr::MulImm {
            dst: addr_reg,
            src: idx_reg,
            imm: elem,
        });
        self.instrs.push(Instr::Add {
            dst: addr_reg,
            a: addr_reg,
            b: base_reg,
        });
    }

    /// Emits a decrement-and-branch back to `target`.
    pub fn loop_back(&mut self, counter: Reg, target: usize) -> &mut Self {
        self.instrs.push(Instr::BranchDecNz { counter, target });
        self
    }

    /// Finalises the kernel.
    pub fn build(self) -> Kernel {
        Kernel {
            instrs: self.instrs,
            num_regs: self.next_reg,
        }
    }

    /// Builds a warm-up-only kernel: one untimed pass over the whole chase
    /// array. The amount / physical-sharing benchmarks use this to let two
    /// different actors populate caches before a timed observation pass.
    pub fn pchase_warm_kernel(
        vendor: Vendor,
        base: u64,
        elem_bytes: u64,
        n_elems: u64,
        space: MemorySpace,
        flags: LoadFlags,
    ) -> Kernel {
        assert!(n_elems > 0);
        let mut b = KernelBuilder::new(vendor);
        let base_reg = b.reg();
        let addr_reg = b.reg();
        let idx_reg = b.reg();
        let counter = b.reg();
        b.mov_imm(base_reg, base);
        b.mov_imm(addr_reg, base);
        b.mov_imm(counter, n_elems);
        let top = b.label();
        b.pchase_untimed_step(addr_reg, idx_reg, base_reg, elem_bytes, space, flags);
        b.loop_back(counter, top);
        b.build()
    }

    /// Builds a timed-only kernel: `timed_steps` timed p-chase steps with
    /// no warm-up (the observation pass of the amount / sharing
    /// benchmarks, and the cold pass of the fetch-granularity benchmark).
    pub fn pchase_timed_kernel(
        vendor: Vendor,
        base: u64,
        elem_bytes: u64,
        timed_steps: u64,
        space: MemorySpace,
        flags: LoadFlags,
    ) -> Kernel {
        assert!(timed_steps > 0);
        let mut b = KernelBuilder::new(vendor);
        let base_reg = b.reg();
        let addr_reg = b.reg();
        let idx_reg = b.reg();
        let counter = b.reg();
        let start = b.reg();
        let end = b.reg();
        let lat = b.reg();
        let mut scratch = PchaseScratch { start, end, lat };
        b.mov_imm(base_reg, base);
        b.mov_imm(addr_reg, base);
        b.mov_imm(counter, timed_steps);
        let top = b.label();
        b.pchase_timed_step(
            addr_reg,
            idx_reg,
            base_reg,
            elem_bytes,
            space,
            flags,
            &mut scratch,
        );
        b.loop_back(counter, top);
        b.build()
    }

    /// Builds a complete p-chase kernel: an untimed warm-up loop over the
    /// whole array followed by a timed loop of `timed_steps` steps, both
    /// starting from element 0.
    ///
    /// `base` is the array's device base address, `elem_bytes` the stride
    /// between consecutive p-chase elements, `n_elems` the array length in
    /// elements. When `warmup` is false the warm-up loop is skipped (used
    /// by the fetch-granularity benchmark, which must observe cold misses).
    #[allow(clippy::too_many_arguments)] // mirrors the PTX kernel's launch signature
    pub fn pchase_kernel(
        vendor: Vendor,
        base: u64,
        elem_bytes: u64,
        n_elems: u64,
        timed_steps: u64,
        space: MemorySpace,
        flags: LoadFlags,
        warmup: bool,
    ) -> Kernel {
        assert!(n_elems > 0 && timed_steps > 0);
        let mut b = KernelBuilder::new(vendor);
        let base_reg = b.reg();
        let addr_reg = b.reg();
        let idx_reg = b.reg();
        let counter = b.reg();
        let start = b.reg();
        let end = b.reg();
        let lat = b.reg();
        let mut scratch = PchaseScratch { start, end, lat };

        b.mov_imm(base_reg, base);
        if warmup {
            b.mov_imm(addr_reg, base);
            b.mov_imm(counter, n_elems);
            let top = b.label();
            b.pchase_untimed_step(addr_reg, idx_reg, base_reg, elem_bytes, space, flags);
            b.loop_back(counter, top);
        }
        b.mov_imm(addr_reg, base);
        b.mov_imm(counter, timed_steps);
        let top = b.label();
        b.pchase_timed_step(
            addr_reg,
            idx_reg,
            base_reg,
            elem_bytes,
            space,
            flags,
            &mut scratch,
        );
        b.loop_back(counter, top);
        b.build()
    }
}

/// Registers used inside a timed p-chase step.
#[derive(Debug, Clone, Copy)]
pub struct PchaseScratch {
    /// Start-clock register.
    pub start: Reg,
    /// End-clock register.
    pub end: Reg,
    /// Latency (end - start) register.
    pub lat: Reg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_distinct_registers() {
        let mut b = KernelBuilder::new(Vendor::Nvidia);
        let r1 = b.reg();
        let r2 = b.reg();
        assert_ne!(r1, r2);
        assert_eq!(b.build().num_regs, 2);
    }

    #[test]
    fn nvidia_timed_step_matches_listing_1_shape() {
        let mut b = KernelBuilder::new(Vendor::Nvidia);
        let base = b.reg();
        let addr = b.reg();
        let idx = b.reg();
        let mut scratch = PchaseScratch {
            start: b.reg(),
            end: b.reg(),
            lat: b.reg(),
        };
        b.pchase_timed_step(
            addr,
            idx,
            base,
            4,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            &mut scratch,
        );
        let k = b.build();
        // clock; load; st.shared; clock; sub; record; mul; add
        assert!(matches!(k.instrs[0], Instr::ReadClock(_)));
        assert!(matches!(k.instrs[1], Instr::Load { .. }));
        assert!(matches!(k.instrs[2], Instr::StoreShared { .. }));
        assert!(matches!(k.instrs[3], Instr::ReadClock(_)));
    }

    #[test]
    fn amd_timed_step_emits_fences() {
        let mut b = KernelBuilder::new(Vendor::Amd);
        let base = b.reg();
        let addr = b.reg();
        let idx = b.reg();
        let mut scratch = PchaseScratch {
            start: b.reg(),
            end: b.reg(),
            lat: b.reg(),
        };
        b.pchase_timed_step(
            addr,
            idx,
            base,
            4,
            MemorySpace::Vector,
            LoadFlags::CACHE_ALL,
            &mut scratch,
        );
        let k = b.build();
        // s_waitcnt; s_waitcnt; s_memtime; flat_load; s_waitcnt; s_waitcnt;
        // s_memtime; ...
        assert!(matches!(k.instrs[0], Instr::Fence));
        assert!(matches!(k.instrs[1], Instr::Fence));
        assert!(matches!(k.instrs[2], Instr::ReadClock(_)));
        assert!(matches!(k.instrs[3], Instr::Load { .. }));
        assert!(matches!(k.instrs[4], Instr::Fence));
    }

    #[test]
    fn full_pchase_kernel_has_warmup_and_timed_loops() {
        let k = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            0x1000,
            4,
            128,
            32,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let branches = k
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::BranchDecNz { .. }))
            .count();
        assert_eq!(branches, 2, "one warm-up loop + one timed loop");
    }

    #[test]
    fn cold_pchase_kernel_skips_warmup() {
        let k = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            0x1000,
            4,
            128,
            32,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            false,
        );
        let branches = k
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::BranchDecNz { .. }))
            .count();
        assert_eq!(branches, 1);
    }
}

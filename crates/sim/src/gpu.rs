//! The simulated GPU: device memory allocation, kernel execution with a
//! cycle clock, and measurement noise.
//!
//! [`Gpu`] is the object the MT4G tool drives. It deliberately exposes only
//! what real hardware exposes: buffer allocation, kernel launch (of
//! [`crate::isa::Kernel`]s), and the vendor query APIs in [`crate::api`].
//! Ground truth lives in [`crate::device::DeviceConfig`], which tests and
//! benches use for validation — the discovery pipeline itself must never
//! read it (beyond what the API layer legitimately reports).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::device::{DeviceConfig, LoadFlags, MemorySpace, Vendor, CONSTANT_ARRAY_LIMIT};
use crate::hierarchy::{LoadResolution, MemorySubsystem};
use crate::isa::{Instr, Kernel};
use crate::noise::NoiseModel;

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

#[derive(Debug)]
struct Buffer {
    base: u64,
    data: Vec<u32>,
}

/// Cycle cost of simple ALU instructions.
const ALU_COST: u64 = 1;
/// Cycle cost of a shared-memory store inside the timed step.
const STORE_SHARED_COST: u64 = 2;

/// Outcome of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Values recorded via [`Instr::Record`] (at most the launch's record
    /// cap — the "first N results" of the paper).
    pub records: Vec<u32>,
    /// GPU cycles the kernel took.
    pub cycles: u64,
}

/// Aggregate counters, used for the run-time accounting of Sec. V-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuStats {
    /// Kernels launched since construction.
    pub kernels_launched: u64,
    /// Loads executed (timed + warm-up).
    pub loads_executed: u64,
    /// Total simulated GPU cycles across launches.
    pub total_cycles: u64,
}

/// Error returned by allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Constant-memory arrays are limited to 64 KiB on NVIDIA.
    ConstantLimitExceeded {
        /// Requested size in bytes.
        requested: u64,
    },
    /// The device memory is exhausted.
    OutOfMemory,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::ConstantLimitExceeded { requested } => write!(
                f,
                "constant array of {requested} B exceeds the 64 KiB limit"
            ),
            AllocError::OutOfMemory => write!(f, "device memory exhausted"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A simulated GPU device.
#[derive(Debug)]
pub struct Gpu {
    /// The ground-truth configuration (presets plant the paper's values).
    pub config: DeviceConfig,
    mem: MemorySubsystem,
    noise: NoiseModel,
    rng: ChaCha8Rng,
    seed: u64,
    buffers: Vec<Buffer>,
    next_base: u64,
    allocated: u64,
    cycle: u64,
    stats: GpuStats,
}

impl Gpu {
    /// Creates a GPU with the default noise model and a fixed seed.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_seed(config, 0x4d54_3447) // "MT4G"
    }

    /// Creates a GPU with an explicit RNG seed (noise reproducibility).
    pub fn with_seed(config: DeviceConfig, seed: u64) -> Self {
        let mem = MemorySubsystem::new(&config);
        Gpu {
            mem,
            noise: NoiseModel::DEFAULT,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            buffers: Vec::new(),
            next_base: 0x1_0000, // leave a null guard page
            allocated: 0,
            cycle: 0,
            stats: GpuStats::default(),
            config,
        }
    }

    /// The base RNG seed this GPU was constructed with.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// Forks an independent, pristine device for one unit of parallel
    /// work: same ground-truth configuration and noise model, fresh caches
    /// / buffers / counters, and an RNG seeded from the base seed and
    /// `stream`. Forking the same stream always yields the same device, so
    /// work units executed concurrently, sequentially, or in different
    /// shard processes observe bit-identical noise.
    pub fn fork(&self, stream: u64) -> Gpu {
        let mut forked = Gpu::with_seed(self.config.clone(), stream_seed(self.seed, stream));
        forked.noise = self.noise;
        forked
    }

    /// Replaces the noise model (e.g. [`NoiseModel::NONE`] in unit tests).
    pub fn set_noise(&mut self, noise: NoiseModel) {
        self.noise = noise;
    }

    /// The GPU's vendor.
    pub fn vendor(&self) -> Vendor {
        self.config.vendor
    }

    /// Launch / load / cycle counters.
    pub fn stats(&self) -> GpuStats {
        self.stats
    }

    /// Allocates `bytes` of device memory for loads through `space`.
    ///
    /// Allocation in [`MemorySpace::Constant`] is capped at 64 KiB, which
    /// is what stops MT4G from sizing the Constant L1.5 cache (Table III's
    /// ">64KiB" entry).
    pub fn alloc(&mut self, space: MemorySpace, bytes: u64) -> Result<BufferId, AllocError> {
        if space == MemorySpace::Constant && bytes > CONSTANT_ARRAY_LIMIT {
            return Err(AllocError::ConstantLimitExceeded { requested: bytes });
        }
        if self.allocated + bytes > self.config.dram.size {
            return Err(AllocError::OutOfMemory);
        }
        let words = bytes.div_ceil(4) as usize;
        let base = self.next_base;
        // Page-align the next allocation so buffers never share a line.
        self.next_base += bytes.div_ceil(4096) * 4096 + 4096;
        self.allocated += bytes;
        self.buffers.push(Buffer {
            base,
            data: vec![0u32; words],
        });
        Ok(BufferId(self.buffers.len() - 1))
    }

    /// Frees all buffers (keeps cache state).
    pub fn free_all(&mut self) {
        self.buffers.clear();
        self.next_base = 0x1_0000;
        self.allocated = 0;
    }

    /// Device base address of a buffer.
    pub fn buffer_base(&self, id: BufferId) -> u64 {
        self.buffers[id.0].base
    }

    /// Writes 32-bit words into a buffer starting at word index `offset`.
    pub fn write_words(&mut self, id: BufferId, offset: usize, words: &[u32]) {
        let buf = &mut self.buffers[id.0];
        buf.data[offset..offset + words.len()].copy_from_slice(words);
    }

    /// Initialises `id` as a p-chase ring: element `i` (spaced
    /// `stride_bytes` apart) holds the element index of its successor, with
    /// the last element pointing back to 0. Returns the element count.
    pub fn init_pchase(&mut self, id: BufferId, array_bytes: u64, stride_bytes: u64) -> u64 {
        assert!(stride_bytes >= 4 && stride_bytes.is_multiple_of(4));
        let n = (array_bytes / stride_bytes).max(1);
        let stride_words = (stride_bytes / 4) as usize;
        let buf = &mut self.buffers[id.0];
        for i in 0..n {
            let next = (i + 1) % n;
            // The stored value is the *element index* of the successor; the
            // kernel scales it by the stride to form the next address.
            buf.data[i as usize * stride_words] = next as u32;
        }
        n
    }

    fn read_mem(&self, addr: u64) -> u32 {
        for buf in &self.buffers {
            let end = buf.base + (buf.data.len() as u64) * 4;
            if addr >= buf.base && addr + 4 <= end {
                return buf.data[((addr - buf.base) / 4) as usize];
            }
        }
        0 // unmapped reads return zero, like a zero page
    }

    /// Invalidates all caches (a new benchmark's pristine state).
    pub fn flush_caches(&mut self) {
        self.mem.flush_all();
    }

    /// Executes a raw load outside any kernel (used by a few benchmarks
    /// that classify hit/miss directly). Advances the clock like a kernel
    /// load would and returns the resolution plus the noisy latency.
    pub fn raw_load(
        &mut self,
        sm: usize,
        core: usize,
        space: MemorySpace,
        flags: LoadFlags,
        addr: u64,
    ) -> (LoadResolution, u32) {
        let res = self.mem.load(sm, core, space, flags, addr);
        let lat = self.noise.sample(&mut self.rng, res.latency);
        self.cycle += lat as u64;
        self.stats.loads_executed += 1;
        (res, lat)
    }

    /// Launches `kernel` on (`sm`, `core`), recording at most `max_records`
    /// values (the paper's "first N results").
    pub fn launch(
        &mut self,
        sm: usize,
        core: usize,
        kernel: &Kernel,
        max_records: usize,
    ) -> LaunchResult {
        let start_cycle = self.cycle;
        let mut regs = vec![0u64; kernel.num_regs];
        let mut records = Vec::with_capacity(max_records.min(4096));
        let mut pc = 0usize;
        self.stats.kernels_launched += 1;

        while pc < kernel.instrs.len() {
            match kernel.instrs[pc] {
                Instr::ReadClock(dst) => {
                    self.cycle += self.config.clock_overhead_cycles as u64;
                    regs[dst] = self.cycle;
                }
                Instr::Load {
                    dst,
                    addr,
                    space,
                    flags,
                } => {
                    let a = regs[addr];
                    let res = self.mem.load(sm, core, space, flags, a);
                    let lat = self.noise.sample(&mut self.rng, res.latency);
                    self.cycle += lat as u64;
                    self.stats.loads_executed += 1;
                    regs[dst] = self.read_mem(a) as u64;
                }
                Instr::StoreShared { .. } => self.cycle += STORE_SHARED_COST,
                Instr::Fence => self.cycle += ALU_COST,
                Instr::MovImm { dst, imm } => {
                    regs[dst] = imm;
                    self.cycle += ALU_COST;
                }
                Instr::Mov { dst, src } => {
                    regs[dst] = regs[src];
                    self.cycle += ALU_COST;
                }
                Instr::Add { dst, a, b } => {
                    regs[dst] = regs[a].wrapping_add(regs[b]);
                    self.cycle += ALU_COST;
                }
                Instr::MulImm { dst, src, imm } => {
                    regs[dst] = regs[src].wrapping_mul(imm);
                    self.cycle += ALU_COST;
                }
                Instr::Sub { dst, a, b } => {
                    regs[dst] = regs[a].wrapping_sub(regs[b]);
                    self.cycle += ALU_COST;
                }
                Instr::Record { src } => {
                    if records.len() < max_records {
                        records.push(regs[src] as u32);
                    }
                }
                Instr::BranchDecNz { counter, target } => {
                    regs[counter] = regs[counter].saturating_sub(1);
                    self.cycle += ALU_COST;
                    if regs[counter] > 0 {
                        pc = target;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        let cycles = self.cycle - start_cycle;
        self.stats.total_cycles += cycles;
        LaunchResult { records, cycles }
    }

    /// Total simulated cycles so far.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycle
    }

    /// Mutable access to the RNG, for the analytic bandwidth model.
    pub(crate) fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Adds kernel-launch bookkeeping for analytic (non-ISA) kernels, such
    /// as the bandwidth stream kernels.
    pub(crate) fn account_analytic_kernel(&mut self, cycles: u64, loads: u64) {
        self.stats.kernels_launched += 1;
        self.stats.loads_executed += loads;
        self.stats.total_cycles += cycles;
        self.cycle += cycles;
    }
}

/// Derives the RNG seed of a fork stream: a splitmix64 finalizer over the
/// base seed and the stream id, so nearby stream ids produce uncorrelated
/// ChaCha8 seeds.
fn stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CacheKind;
    use crate::isa::KernelBuilder;
    use crate::presets;

    fn quiet_gpu() -> Gpu {
        let mut gpu = Gpu::new(presets::h100_80().config);
        gpu.set_noise(NoiseModel::NONE);
        gpu
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut gpu = Gpu::new(presets::h100_80().config);
        // Perturb the parent: forks must not depend on parent state.
        let _ = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        let _ = gpu.raw_load(0, 0, MemorySpace::Global, LoadFlags::CACHE_ALL, 0x1_0000);
        let run = |g: &mut Gpu| {
            let buf = g.alloc(MemorySpace::Global, 4096).unwrap();
            let n = g.init_pchase(buf, 4096, 32);
            let kernel = KernelBuilder::pchase_kernel(
                Vendor::Nvidia,
                g.buffer_base(buf),
                32,
                n,
                256,
                MemorySpace::Global,
                LoadFlags::CACHE_ALL,
                true,
            );
            g.launch(0, 0, &kernel, 256).records
        };
        let a = run(&mut gpu.fork(7));
        let b = run(&mut gpu.fork(7));
        let c = run(&mut gpu.fork(8));
        assert_eq!(a, b, "same stream, same results");
        assert_ne!(a, c, "different streams see different noise");
        // The fork stream is derived from the base seed, not the parent's
        // RNG position.
        assert_eq!(gpu.fork(7).base_seed(), gpu.fork(7).base_seed());
    }

    #[test]
    fn alloc_and_write_round_trip() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        gpu.write_words(buf, 0, &[7, 8, 9]);
        let base = gpu.buffer_base(buf);
        assert_eq!(gpu.read_mem(base), 7);
        assert_eq!(gpu.read_mem(base + 4), 8);
        assert_eq!(gpu.read_mem(base + 8), 9);
    }

    #[test]
    fn constant_alloc_enforces_64kib_limit() {
        let mut gpu = quiet_gpu();
        assert!(gpu.alloc(MemorySpace::Constant, 64 * 1024).is_ok());
        let err = gpu.alloc(MemorySpace::Constant, 64 * 1024 + 1).unwrap_err();
        assert!(matches!(err, AllocError::ConstantLimitExceeded { .. }));
    }

    #[test]
    fn oom_is_reported() {
        let mut gpu = quiet_gpu();
        let too_much = gpu.config.dram.size + 1;
        assert_eq!(
            gpu.alloc(MemorySpace::Global, too_much),
            Err(AllocError::OutOfMemory)
        );
    }

    #[test]
    fn pchase_ring_is_circular() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 1024).unwrap();
        let n = gpu.init_pchase(buf, 1024, 32);
        assert_eq!(n, 32);
        let base = gpu.buffer_base(buf);
        // Follow the chain n steps and come back to element 0.
        let mut idx = 0u64;
        for _ in 0..n {
            idx = gpu.read_mem(base + idx * 32) as u64;
        }
        assert_eq!(idx, 0);
    }

    #[test]
    fn pchase_kernel_measures_l1_hit_latency_exactly_without_noise() {
        let mut gpu = quiet_gpu();
        let l1 = *gpu.config.cache(CacheKind::L1).unwrap();
        let buf = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        let n = gpu.init_pchase(buf, 4096, l1.fetch_granularity as u64);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            l1.fetch_granularity as u64,
            n,
            n,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 64);
        assert_eq!(run.records.len(), 64);
        // All hits: measured latency = L1 latency + clock overhead + the
        // shared store between the two clock reads.
        let expected =
            l1.load_latency as u64 + gpu.config.clock_overhead_cycles as u64 + STORE_SHARED_COST;
        for &r in &run.records {
            assert_eq!(r as u64, expected, "records: {:?}", &run.records[..8]);
        }
    }

    #[test]
    fn pchase_kernel_sees_misses_beyond_l1_capacity() {
        let mut gpu = quiet_gpu();
        let l1 = *gpu.config.cache(CacheKind::L1).unwrap();
        let l2 = *gpu.config.cache(CacheKind::L2).unwrap();
        let bytes = l1.size + 4 * l1.line_size as u64; // just beyond capacity
        let buf = gpu.alloc(MemorySpace::Global, bytes).unwrap();
        let n = gpu.init_pchase(buf, bytes, l1.fetch_granularity as u64);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            l1.fetch_granularity as u64,
            n,
            256,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 256);
        let expected_miss =
            l2.load_latency as u64 + gpu.config.clock_overhead_cycles as u64 + STORE_SHARED_COST;
        let misses = run
            .records
            .iter()
            .filter(|&&r| r as u64 >= expected_miss)
            .count();
        assert!(
            misses as f64 > 0.9 * run.records.len() as f64,
            "{misses}/{} misses",
            run.records.len()
        );
    }

    #[test]
    fn launch_statistics_accumulate() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 1024).unwrap();
        let n = gpu.init_pchase(buf, 1024, 32);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            32,
            n,
            n,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        gpu.launch(0, 0, &kernel, 8);
        let s = gpu.stats();
        assert_eq!(s.kernels_launched, 1);
        assert_eq!(s.loads_executed, 2 * n); // warm-up + timed
        assert!(s.total_cycles > 0);
    }

    #[test]
    fn record_cap_limits_stored_results() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 2048).unwrap();
        let n = gpu.init_pchase(buf, 2048, 32);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            32,
            n,
            n,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 5);
        assert_eq!(run.records.len(), 5);
    }

    #[test]
    fn noisy_measurements_fluctuate_but_stay_centred() {
        let mut gpu = Gpu::new(presets::h100_80().config);
        let l1 = *gpu.config.cache(CacheKind::L1).unwrap();
        let buf = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        let n = gpu.init_pchase(buf, 4096, l1.fetch_granularity as u64);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            l1.fetch_granularity as u64,
            n,
            512,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 512);
        let mean: f64 =
            run.records.iter().map(|&r| r as f64).sum::<f64>() / run.records.len() as f64;
        let expected = l1.load_latency as f64
            + gpu.config.clock_overhead_cycles as f64
            + STORE_SHARED_COST as f64;
        assert!(
            (mean - expected).abs() < 6.0,
            "mean {mean} vs expected {expected}"
        );
    }
}

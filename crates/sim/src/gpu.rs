//! The simulated GPU: device memory allocation, kernel execution with a
//! cycle clock, and measurement noise.
//!
//! [`Gpu`] is the object the MT4G tool drives. It deliberately exposes only
//! what real hardware exposes: buffer allocation, kernel launch (of
//! [`crate::isa::Kernel`]s), and the vendor query APIs in [`crate::api`].
//! Ground truth lives in [`crate::device::DeviceConfig`], which tests and
//! benches use for validation — the discovery pipeline itself must never
//! read it (beyond what the API layer legitimately reports).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::device::{DeviceConfig, LoadFlags, MemorySpace, Vendor, CONSTANT_ARRAY_LIMIT};
use crate::hierarchy::{LoadResolution, MemorySubsystem};
use crate::isa::{Instr, Kernel};
use crate::noise::{NoiseDraw, NoiseModel};

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

#[derive(Debug)]
struct Buffer {
    base: u64,
    /// Bytes of device address space each stored word covers: 4 for dense
    /// buffers, the element stride for sparse chase buffers
    /// ([`Gpu::alloc_strided`]). Reads between the stored words of a
    /// sparse buffer return 0 — bit-identical to a dense zero-initialised
    /// buffer whose chase pointers are the only non-zero words.
    bytes_per_word: u64,
    data: Vec<u32>,
}

impl Buffer {
    fn len_bytes(&self) -> u64 {
        self.data.len() as u64 * self.bytes_per_word
    }
}

/// Cycle cost of simple ALU instructions.
const ALU_COST: u64 = 1;
/// Cycle cost of a shared-memory store inside the timed step.
const STORE_SHARED_COST: u64 = 2;

/// Noise draws pre-drawn per batch chunk in the native p-chase loops (see
/// [`Gpu::pchase_exec`]). Sized to keep the scratch array in L1 while
/// amortising the chunk-loop overhead.
const NOISE_CHUNK: usize = 128;

/// Outcome of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Values recorded via [`Instr::Record`] (at most the launch's record
    /// cap — the "first N results" of the paper).
    pub records: Vec<u32>,
    /// GPU cycles the kernel took.
    pub cycles: u64,
}

/// Descriptor of a batched p-chase execution — the native fast path that
/// replaces interpreting `KernelBuilder::pchase_kernel` instruction by
/// instruction. Field semantics mirror the kernel builder's parameters.
#[derive(Debug, Clone, Copy)]
pub struct PchaseBatch {
    /// Device base address of the chase array.
    pub base: u64,
    /// Stride between consecutive chase elements, in bytes.
    pub elem_bytes: u64,
    /// Number of elements in the chase ring.
    pub n_elems: u64,
    /// Number of timed steps to execute.
    pub timed_steps: u64,
    /// Logical memory space of the loads.
    pub space: MemorySpace,
    /// Cache-policy flags.
    pub flags: LoadFlags,
    /// Whether to run the untimed warm-up pass over the whole ring first.
    pub warmup: bool,
}

/// Aggregate counters, used for the run-time accounting of Sec. V-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuStats {
    /// Kernels launched since construction.
    pub kernels_launched: u64,
    /// Loads executed (timed + warm-up).
    pub loads_executed: u64,
    /// Total simulated GPU cycles across launches.
    pub total_cycles: u64,
}

/// Error returned by allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Constant-memory arrays are limited to 64 KiB on NVIDIA.
    ConstantLimitExceeded {
        /// Requested size in bytes.
        requested: u64,
    },
    /// The device memory is exhausted.
    OutOfMemory,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::ConstantLimitExceeded { requested } => write!(
                f,
                "constant array of {requested} B exceeds the 64 KiB limit"
            ),
            AllocError::OutOfMemory => write!(f, "device memory exhausted"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A simulated GPU device.
#[derive(Debug)]
pub struct Gpu {
    /// The ground-truth configuration (presets plant the paper's values).
    pub config: DeviceConfig,
    mem: MemorySubsystem,
    noise: NoiseModel,
    rng: ChaCha8Rng,
    seed: u64,
    buffers: Vec<Buffer>,
    next_base: u64,
    allocated: u64,
    cycle: u64,
    stats: GpuStats,
}

impl Gpu {
    /// Creates a GPU with the default noise model and a fixed seed.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_seed(config, 0x4d54_3447) // "MT4G"
    }

    /// Creates a GPU with an explicit RNG seed (noise reproducibility).
    pub fn with_seed(config: DeviceConfig, seed: u64) -> Self {
        let mem = MemorySubsystem::new(&config);
        Gpu {
            mem,
            noise: NoiseModel::DEFAULT,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            buffers: Vec::new(),
            next_base: 0x1_0000, // leave a null guard page
            allocated: 0,
            cycle: 0,
            stats: GpuStats::default(),
            config,
        }
    }

    /// The base RNG seed this GPU was constructed with.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// Forks an independent, pristine device for one unit of parallel
    /// work: same ground-truth configuration and noise model, fresh caches
    /// / buffers / counters, and an RNG seeded from the base seed and
    /// `stream`. Forking the same stream always yields the same device, so
    /// work units executed concurrently, sequentially, or in different
    /// shard processes observe bit-identical noise.
    pub fn fork(&self, stream: u64) -> Gpu {
        let mut forked = Gpu::with_seed(self.config.clone(), stream_seed(self.seed, stream));
        forked.noise = self.noise;
        forked
    }

    /// Replaces the noise model (e.g. [`NoiseModel::NONE`] in unit tests,
    /// [`NoiseModel::HOSTILE`] in the hostile scenario).
    pub fn set_noise(&mut self, noise: NoiseModel) {
        self.noise = noise;
    }

    /// The active measurement-noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The GPU's vendor.
    pub fn vendor(&self) -> Vendor {
        self.config.vendor
    }

    /// Launch / load / cycle counters.
    pub fn stats(&self) -> GpuStats {
        self.stats
    }

    /// Allocates `bytes` of device memory for loads through `space`.
    ///
    /// Allocation in [`MemorySpace::Constant`] is capped at 64 KiB, which
    /// is what stops MT4G from sizing the Constant L1.5 cache (Table III's
    /// ">64KiB" entry).
    pub fn alloc(&mut self, space: MemorySpace, bytes: u64) -> Result<BufferId, AllocError> {
        self.alloc_inner(space, bytes, 4)
    }

    /// Allocates `bytes` of device address space backed by one stored word
    /// per `stride_bytes` — the sparse representation of a page-stride
    /// chase ring, whose footprint (what the device maps and the TLB
    /// covers) can span gigabytes while host memory stays proportional to
    /// the element count. Reads at non-element offsets return 0, exactly
    /// like the untouched words of a dense zero-initialised buffer.
    pub fn alloc_strided(
        &mut self,
        space: MemorySpace,
        bytes: u64,
        stride_bytes: u64,
    ) -> Result<BufferId, AllocError> {
        assert!(stride_bytes >= 4 && stride_bytes.is_multiple_of(4));
        self.alloc_inner(space, bytes, stride_bytes)
    }

    fn alloc_inner(
        &mut self,
        space: MemorySpace,
        bytes: u64,
        bytes_per_word: u64,
    ) -> Result<BufferId, AllocError> {
        if space == MemorySpace::Constant && bytes > CONSTANT_ARRAY_LIMIT {
            return Err(AllocError::ConstantLimitExceeded { requested: bytes });
        }
        if self.allocated + bytes > self.config.dram.size {
            return Err(AllocError::OutOfMemory);
        }
        let words = bytes.div_ceil(bytes_per_word) as usize;
        let base = self.next_base;
        // Page-align the next allocation so buffers never share a line.
        self.next_base += bytes.div_ceil(4096) * 4096 + 4096;
        self.allocated += bytes;
        self.buffers.push(Buffer {
            base,
            bytes_per_word,
            data: vec![0u32; words],
        });
        Ok(BufferId(self.buffers.len() - 1))
    }

    /// Frees all buffers (keeps cache state).
    pub fn free_all(&mut self) {
        self.buffers.clear();
        self.next_base = 0x1_0000;
        self.allocated = 0;
    }

    /// Device base address of a buffer.
    pub fn buffer_base(&self, id: BufferId) -> u64 {
        self.buffers[id.0].base
    }

    /// Writes 32-bit words into a buffer starting at word index `offset`.
    pub fn write_words(&mut self, id: BufferId, offset: usize, words: &[u32]) {
        let buf = &mut self.buffers[id.0];
        buf.data[offset..offset + words.len()].copy_from_slice(words);
    }

    /// Initialises `id` as a p-chase ring: element `i` (spaced
    /// `stride_bytes` apart) holds the element index of its successor, with
    /// the last element pointing back to 0. Returns the element count.
    pub fn init_pchase(&mut self, id: BufferId, array_bytes: u64, stride_bytes: u64) -> u64 {
        assert!(stride_bytes >= 4 && stride_bytes.is_multiple_of(4));
        let n = (array_bytes / stride_bytes).max(1);
        let buf = &mut self.buffers[id.0];
        assert!(
            stride_bytes.is_multiple_of(buf.bytes_per_word),
            "chase stride {stride_bytes} must be a multiple of the buffer's \
             storage granule {}",
            buf.bytes_per_word
        );
        let stride_words = (stride_bytes / buf.bytes_per_word) as usize;
        for i in 0..n {
            let next = (i + 1) % n;
            // The stored value is the *element index* of the successor; the
            // kernel scales it by the stride to form the next address.
            buf.data[i as usize * stride_words] = next as u32;
        }
        n
    }

    fn read_mem(&self, addr: u64) -> u32 {
        for buf in &self.buffers {
            let end = buf.base + buf.len_bytes();
            if addr >= buf.base && addr + 4 <= end {
                let off = addr - buf.base;
                if buf.bytes_per_word == 4 {
                    return buf.data[(off / 4) as usize];
                }
                // Sparse buffer: only element-start words are backed.
                return if off.is_multiple_of(buf.bytes_per_word) {
                    buf.data[(off / buf.bytes_per_word) as usize]
                } else {
                    0
                };
            }
        }
        0 // unmapped reads return zero, like a zero page
    }

    /// [`Self::read_mem`] with a pre-resolved buffer index: the p-chase
    /// ring never leaves the buffer containing its base, so the linear
    /// buffer scan is paid once per batch instead of once per element.
    /// Buffers are disjoint (monotonic page-aligned bases), so probing
    /// the hinted buffer first returns exactly what the scan would; any
    /// address outside it falls back to the scan.
    #[inline]
    fn read_mem_hint(&self, hint: usize, addr: u64) -> u32 {
        if let Some(buf) = self.buffers.get(hint) {
            let end = buf.base + buf.len_bytes();
            if addr >= buf.base && addr + 4 <= end {
                let off = addr - buf.base;
                return if buf.bytes_per_word == 4 {
                    buf.data[(off / 4) as usize]
                } else if off.is_multiple_of(buf.bytes_per_word) {
                    buf.data[(off / buf.bytes_per_word) as usize]
                } else {
                    0
                };
            }
        }
        self.read_mem(addr)
    }

    /// Index of the buffer containing `addr` (`usize::MAX` when unmapped —
    /// [`Self::read_mem_hint`] then degrades to the plain scan).
    fn buffer_index_of(&self, addr: u64) -> usize {
        self.buffers
            .iter()
            .position(|b| addr >= b.base && addr + 4 <= b.base + b.len_bytes())
            .unwrap_or(usize::MAX)
    }

    /// Invalidates all caches (a new benchmark's pristine state).
    pub fn flush_caches(&mut self) {
        self.mem.flush_all();
    }

    /// Executes a raw load outside any kernel (used by a few benchmarks
    /// that classify hit/miss directly). Advances the clock like a kernel
    /// load would and returns the resolution plus the noisy latency.
    pub fn raw_load(
        &mut self,
        sm: usize,
        core: usize,
        space: MemorySpace,
        flags: LoadFlags,
        addr: u64,
    ) -> (LoadResolution, u32) {
        let res = self.mem.load(sm, core, space, flags, addr);
        let lat = self.noise.sample(&mut self.rng, res.latency);
        self.cycle += lat as u64;
        self.stats.loads_executed += 1;
        (res, lat)
    }

    /// Executes a p-chase natively — the batched-load fast path.
    ///
    /// Cycle-for-cycle, record-for-record and RNG-draw-for-RNG-draw
    /// equivalent to `launch(KernelBuilder::pchase_kernel(..))`, but
    /// without building an instruction vector or paying the interpreter's
    /// per-instruction dispatch: the warm-up and timed loops run as tight
    /// native loops over the memory hierarchy. The equivalence is pinned
    /// by the `pchase_batch_*_matches_interpreter` tests below.
    pub fn pchase_batch(
        &mut self,
        sm: usize,
        core: usize,
        batch: &PchaseBatch,
        max_records: usize,
    ) -> LaunchResult {
        assert!(batch.n_elems > 0 && batch.timed_steps > 0);
        // MovImm preamble: base (+1); warm-up addr+counter (+2) when
        // warming; timed addr+counter (+2).
        let preamble = if batch.warmup { 5 } else { 3 };
        let warm_steps = if batch.warmup { batch.n_elems } else { 0 };
        self.pchase_exec(
            sm,
            core,
            batch,
            warm_steps,
            batch.timed_steps,
            preamble,
            max_records,
        )
    }

    /// Native equivalent of `launch(KernelBuilder::pchase_warm_kernel(..))`:
    /// one untimed pass over the whole chase array.
    ///
    /// Consumes `base`, `elem_bytes`, `n_elems`, `space` and `flags` of
    /// `batch`; the warm kernel has no timed loop, so `timed_steps` and
    /// `warmup` are ignored (mirroring `pchase_warm_kernel`, which takes
    /// neither parameter).
    pub fn pchase_warm_batch(&mut self, sm: usize, core: usize, batch: &PchaseBatch) {
        assert!(batch.n_elems > 0);
        self.pchase_exec(sm, core, batch, batch.n_elems, 0, 3, 0);
    }

    /// Native equivalent of `launch(KernelBuilder::pchase_timed_kernel(..))`:
    /// `timed_steps` timed steps with no warm-up.
    ///
    /// Consumes `base`, `elem_bytes`, `timed_steps`, `space` and `flags`
    /// of `batch`; the timed kernel never warms and never wraps a ring,
    /// so `warmup` and `n_elems` are ignored (mirroring
    /// `pchase_timed_kernel`, which takes neither parameter).
    pub fn pchase_timed_batch(
        &mut self,
        sm: usize,
        core: usize,
        batch: &PchaseBatch,
        max_records: usize,
    ) -> LaunchResult {
        assert!(batch.timed_steps > 0);
        self.pchase_exec(sm, core, batch, 0, batch.timed_steps, 3, max_records)
    }

    /// Shared body of the batched p-chase entry points. `preamble_alu` is
    /// the number of `MovImm` setup instructions the equivalent kernel
    /// executes; they cost [`ALU_COST`] each and never sit between the two
    /// clock reads, so summing them up front keeps the cycle accounting
    /// identical to the interpreter's.
    #[allow(clippy::too_many_arguments)]
    fn pchase_exec(
        &mut self,
        sm: usize,
        core: usize,
        batch: &PchaseBatch,
        warm_steps: u64,
        timed_steps: u64,
        preamble_alu: u64,
        max_records: usize,
    ) -> LaunchResult {
        let start_cycle = self.cycle;
        self.stats.kernels_launched += 1;
        self.cycle += preamble_alu * ALU_COST;
        let overhead = self.config.clock_overhead_cycles as u64;
        // AMD timed steps are preceded by two `s_waitcnt` fences *outside*
        // the clocked window (see `KernelBuilder::pchase_timed_step`).
        let pre_fences = if self.config.vendor == Vendor::Amd {
            2 * ALU_COST
        } else {
            0
        };

        // The chase ring never leaves the buffer holding its base; resolve
        // the buffer scan once per batch.
        let hint = self.buffer_index_of(batch.base);
        // Noise draws are batched in chunks ahead of the loads. The loads
        // never consume RNG and the draws never depend on a latency, so
        // the RNG stream is draw-for-draw identical to the historical
        // interleaved order (pinned by the interpreter-lockstep tests).
        let noise = self.noise;
        let silent = noise.is_silent();
        let mut draws = [NoiseDraw::default(); NOISE_CHUNK];

        let mut records = Vec::with_capacity(max_records.min(4096));
        let mut addr = batch.base;
        // Warm-up pass: Load + MulImm + Add + BranchDecNz per element.
        let mut remaining = warm_steps;
        while remaining > 0 {
            let k = remaining.min(NOISE_CHUNK as u64) as usize;
            if !silent {
                for d in &mut draws[..k] {
                    *d = noise.draw(&mut self.rng);
                }
            }
            for d in &draws[..k] {
                let res = self.mem.load(sm, core, batch.space, batch.flags, addr);
                let lat = noise.apply(res.latency, *d);
                self.cycle += lat as u64 + 3 * ALU_COST;
                let idx = self.read_mem_hint(hint, addr) as u64;
                addr = batch.base + idx * batch.elem_bytes;
            }
            self.stats.loads_executed += k as u64;
            remaining -= k as u64;
        }
        // Timed pass, restarting from element 0: per step
        // [fences;] clock; load; store/fences; clock; sub; record; mul; add;
        // branch — the recorded value is `latency + store cost + overhead`.
        addr = batch.base;
        let mut remaining = timed_steps;
        while remaining > 0 {
            let k = remaining.min(NOISE_CHUNK as u64) as usize;
            if !silent {
                for d in &mut draws[..k] {
                    *d = noise.draw(&mut self.rng);
                }
            }
            for d in &draws[..k] {
                let res = self.mem.load(sm, core, batch.space, batch.flags, addr);
                let lat = noise.apply(res.latency, *d);
                self.cycle +=
                    pre_fences + 2 * overhead + lat as u64 + STORE_SHARED_COST + 4 * ALU_COST;
                if records.len() < max_records {
                    records.push((lat as u64 + STORE_SHARED_COST + overhead) as u32);
                }
                let idx = self.read_mem_hint(hint, addr) as u64;
                addr = batch.base + idx * batch.elem_bytes;
            }
            self.stats.loads_executed += k as u64;
            remaining -= k as u64;
        }
        let cycles = self.cycle - start_cycle;
        self.stats.total_cycles += cycles;
        LaunchResult { records, cycles }
    }

    /// Launches `kernel` on (`sm`, `core`), recording at most `max_records`
    /// values (the paper's "first N results").
    pub fn launch(
        &mut self,
        sm: usize,
        core: usize,
        kernel: &Kernel,
        max_records: usize,
    ) -> LaunchResult {
        let start_cycle = self.cycle;
        let mut regs = vec![0u64; kernel.num_regs];
        let mut records = Vec::with_capacity(max_records.min(4096));
        let mut pc = 0usize;
        self.stats.kernels_launched += 1;

        while pc < kernel.instrs.len() {
            match kernel.instrs[pc] {
                Instr::ReadClock(dst) => {
                    self.cycle += self.config.clock_overhead_cycles as u64;
                    regs[dst] = self.cycle;
                }
                Instr::Load {
                    dst,
                    addr,
                    space,
                    flags,
                } => {
                    let a = regs[addr];
                    let res = self.mem.load(sm, core, space, flags, a);
                    let lat = self.noise.sample(&mut self.rng, res.latency);
                    self.cycle += lat as u64;
                    self.stats.loads_executed += 1;
                    regs[dst] = self.read_mem(a) as u64;
                }
                Instr::StoreShared { .. } => self.cycle += STORE_SHARED_COST,
                Instr::Fence => self.cycle += ALU_COST,
                Instr::MovImm { dst, imm } => {
                    regs[dst] = imm;
                    self.cycle += ALU_COST;
                }
                Instr::Mov { dst, src } => {
                    regs[dst] = regs[src];
                    self.cycle += ALU_COST;
                }
                Instr::Add { dst, a, b } => {
                    regs[dst] = regs[a].wrapping_add(regs[b]);
                    self.cycle += ALU_COST;
                }
                Instr::MulImm { dst, src, imm } => {
                    regs[dst] = regs[src].wrapping_mul(imm);
                    self.cycle += ALU_COST;
                }
                Instr::Sub { dst, a, b } => {
                    regs[dst] = regs[a].wrapping_sub(regs[b]);
                    self.cycle += ALU_COST;
                }
                Instr::Record { src } => {
                    if records.len() < max_records {
                        records.push(regs[src] as u32);
                    }
                }
                Instr::BranchDecNz { counter, target } => {
                    regs[counter] = regs[counter].saturating_sub(1);
                    self.cycle += ALU_COST;
                    if regs[counter] > 0 {
                        pc = target;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        let cycles = self.cycle - start_cycle;
        self.stats.total_cycles += cycles;
        LaunchResult { records, cycles }
    }

    /// Total simulated cycles so far.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycle
    }

    /// Mutable access to the RNG, for the analytic bandwidth model.
    pub(crate) fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Adds kernel-launch bookkeeping for analytic (non-ISA) kernels, such
    /// as the bandwidth stream kernels.
    pub(crate) fn account_analytic_kernel(&mut self, cycles: u64, loads: u64) {
        self.stats.kernels_launched += 1;
        self.stats.loads_executed += loads;
        self.stats.total_cycles += cycles;
        self.cycle += cycles;
    }
}

/// Derives the RNG seed of a fork stream: a splitmix64 finalizer over the
/// base seed and the stream id, so nearby stream ids produce uncorrelated
/// ChaCha8 seeds.
fn stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CacheKind;
    use crate::isa::KernelBuilder;
    use crate::presets;

    fn quiet_gpu() -> Gpu {
        let mut gpu = Gpu::new(presets::h100_80().config);
        gpu.set_noise(NoiseModel::NONE);
        gpu
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut gpu = Gpu::new(presets::h100_80().config);
        // Perturb the parent: forks must not depend on parent state.
        let _ = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        let _ = gpu.raw_load(0, 0, MemorySpace::Global, LoadFlags::CACHE_ALL, 0x1_0000);
        let run = |g: &mut Gpu| {
            let buf = g.alloc(MemorySpace::Global, 4096).unwrap();
            let n = g.init_pchase(buf, 4096, 32);
            let kernel = KernelBuilder::pchase_kernel(
                Vendor::Nvidia,
                g.buffer_base(buf),
                32,
                n,
                256,
                MemorySpace::Global,
                LoadFlags::CACHE_ALL,
                true,
            );
            g.launch(0, 0, &kernel, 256).records
        };
        let a = run(&mut gpu.fork(7));
        let b = run(&mut gpu.fork(7));
        let c = run(&mut gpu.fork(8));
        assert_eq!(a, b, "same stream, same results");
        assert_ne!(a, c, "different streams see different noise");
        // The fork stream is derived from the base seed, not the parent's
        // RNG position.
        assert_eq!(gpu.fork(7).base_seed(), gpu.fork(7).base_seed());
    }

    #[test]
    fn alloc_and_write_round_trip() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        gpu.write_words(buf, 0, &[7, 8, 9]);
        let base = gpu.buffer_base(buf);
        assert_eq!(gpu.read_mem(base), 7);
        assert_eq!(gpu.read_mem(base + 4), 8);
        assert_eq!(gpu.read_mem(base + 8), 9);
    }

    #[test]
    fn constant_alloc_enforces_64kib_limit() {
        let mut gpu = quiet_gpu();
        assert!(gpu.alloc(MemorySpace::Constant, 64 * 1024).is_ok());
        let err = gpu.alloc(MemorySpace::Constant, 64 * 1024 + 1).unwrap_err();
        assert!(matches!(err, AllocError::ConstantLimitExceeded { .. }));
    }

    #[test]
    fn oom_is_reported() {
        let mut gpu = quiet_gpu();
        let too_much = gpu.config.dram.size + 1;
        assert_eq!(
            gpu.alloc(MemorySpace::Global, too_much),
            Err(AllocError::OutOfMemory)
        );
    }

    #[test]
    fn pchase_ring_is_circular() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 1024).unwrap();
        let n = gpu.init_pchase(buf, 1024, 32);
        assert_eq!(n, 32);
        let base = gpu.buffer_base(buf);
        // Follow the chain n steps and come back to element 0.
        let mut idx = 0u64;
        for _ in 0..n {
            idx = gpu.read_mem(base + idx * 32) as u64;
        }
        assert_eq!(idx, 0);
    }

    #[test]
    fn pchase_kernel_measures_l1_hit_latency_exactly_without_noise() {
        let mut gpu = quiet_gpu();
        let l1 = *gpu.config.cache(CacheKind::L1).unwrap();
        let buf = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        let n = gpu.init_pchase(buf, 4096, l1.fetch_granularity as u64);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            l1.fetch_granularity as u64,
            n,
            n,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 64);
        assert_eq!(run.records.len(), 64);
        // All hits: measured latency = L1 latency + clock overhead + the
        // shared store between the two clock reads.
        let expected =
            l1.load_latency as u64 + gpu.config.clock_overhead_cycles as u64 + STORE_SHARED_COST;
        for &r in &run.records {
            assert_eq!(r as u64, expected, "records: {:?}", &run.records[..8]);
        }
    }

    #[test]
    fn pchase_kernel_sees_misses_beyond_l1_capacity() {
        let mut gpu = quiet_gpu();
        let l1 = *gpu.config.cache(CacheKind::L1).unwrap();
        let l2 = *gpu.config.cache(CacheKind::L2).unwrap();
        let bytes = l1.size + 4 * l1.line_size as u64; // just beyond capacity
        let buf = gpu.alloc(MemorySpace::Global, bytes).unwrap();
        let n = gpu.init_pchase(buf, bytes, l1.fetch_granularity as u64);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            l1.fetch_granularity as u64,
            n,
            256,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 256);
        let expected_miss =
            l2.load_latency as u64 + gpu.config.clock_overhead_cycles as u64 + STORE_SHARED_COST;
        let misses = run
            .records
            .iter()
            .filter(|&&r| r as u64 >= expected_miss)
            .count();
        assert!(
            misses as f64 > 0.9 * run.records.len() as f64,
            "{misses}/{} misses",
            run.records.len()
        );
    }

    #[test]
    fn launch_statistics_accumulate() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 1024).unwrap();
        let n = gpu.init_pchase(buf, 1024, 32);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            32,
            n,
            n,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        gpu.launch(0, 0, &kernel, 8);
        let s = gpu.stats();
        assert_eq!(s.kernels_launched, 1);
        assert_eq!(s.loads_executed, 2 * n); // warm-up + timed
        assert!(s.total_cycles > 0);
    }

    #[test]
    fn record_cap_limits_stored_results() {
        let mut gpu = quiet_gpu();
        let buf = gpu.alloc(MemorySpace::Global, 2048).unwrap();
        let n = gpu.init_pchase(buf, 2048, 32);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            32,
            n,
            n,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 5);
        assert_eq!(run.records.len(), 5);
    }

    /// Runs the same full p-chase through the instruction interpreter and
    /// the batched executor on identically-forked GPUs and asserts
    /// bit-identical records, cycles and statistics — the contract that
    /// lets `mt4g_core::pchase` switch to the batch API without changing
    /// a single measured value.
    fn assert_batch_matches_interpreter(gpu: &Gpu, space: MemorySpace, flags: LoadFlags) {
        let setup = |g: &mut Gpu| {
            let buf = g.alloc(space, 8192).unwrap();
            let n = g.init_pchase(buf, 8192, 32);
            (g.buffer_base(buf), n)
        };
        for warmup in [true, false] {
            let mut a = gpu.fork(99);
            let mut b = gpu.fork(99);
            let (base_a, n) = setup(&mut a);
            let (base_b, _) = setup(&mut b);
            assert_eq!(base_a, base_b);
            let kernel = KernelBuilder::pchase_kernel(
                gpu.vendor(),
                base_a,
                32,
                n,
                200,
                space,
                flags,
                warmup,
            );
            let want = a.launch(0, 0, &kernel, 128);
            let got = b.pchase_batch(
                0,
                0,
                &PchaseBatch {
                    base: base_b,
                    elem_bytes: 32,
                    n_elems: n,
                    timed_steps: 200,
                    space,
                    flags,
                    warmup,
                },
                128,
            );
            assert_eq!(want, got, "warmup={warmup}");
            assert_eq!(a.stats(), b.stats(), "warmup={warmup}");
            assert_eq!(a.elapsed_cycles(), b.elapsed_cycles(), "warmup={warmup}");
            // The RNG streams must also be position-identical: a further
            // identical run on both devices stays in lockstep.
            let w2 = a.launch(0, 0, &kernel, 128);
            let g2 = b.launch(0, 0, &kernel, 128);
            assert_eq!(w2, g2, "post-run RNG positions diverged");
        }
    }

    #[test]
    fn pchase_batch_nvidia_matches_interpreter() {
        let gpu = Gpu::new(presets::h100_80().config);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Global, LoadFlags::CACHE_ALL);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Global, LoadFlags::CACHE_GLOBAL);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Global, LoadFlags::VOLATILE);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Constant, LoadFlags::CACHE_ALL);
    }

    #[test]
    fn pchase_batch_amd_matches_interpreter() {
        let gpu = Gpu::new(presets::mi300x().config);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Vector, LoadFlags::CACHE_ALL);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Vector, LoadFlags::CACHE_GLOBAL);
        assert_batch_matches_interpreter(&gpu, MemorySpace::Scalar, LoadFlags::CACHE_ALL);
    }

    /// The batched executor pre-draws noise in chunks; the interpreter
    /// draws per load. They must stay in RNG lockstep under every noise
    /// model — including HOSTILE (both the jitter and outlier draws are
    /// live) and NONE (the silent fast path must consume *no* RNG).
    #[test]
    fn pchase_batch_matches_interpreter_under_every_noise_model() {
        for noise in [NoiseModel::DEFAULT, NoiseModel::HOSTILE, NoiseModel::NONE] {
            let mut nv = Gpu::new(presets::h100_80().config);
            nv.set_noise(noise);
            assert_batch_matches_interpreter(&nv, MemorySpace::Global, LoadFlags::CACHE_ALL);
            let mut amd = Gpu::new(presets::mi210().config);
            amd.set_noise(noise);
            assert_batch_matches_interpreter(&amd, MemorySpace::Vector, LoadFlags::CACHE_ALL);
        }
    }

    #[test]
    fn pchase_warm_and_timed_batches_match_interpreter() {
        for cfg in [presets::h100_80().config, presets::mi210().config] {
            let gpu = Gpu::new(cfg);
            let space = match gpu.vendor() {
                Vendor::Nvidia => MemorySpace::Global,
                Vendor::Amd => MemorySpace::Vector,
            };
            let mut a = gpu.fork(5);
            let mut b = gpu.fork(5);
            let buf_a = a.alloc(space, 4096).unwrap();
            let buf_b = b.alloc(space, 4096).unwrap();
            let n = a.init_pchase(buf_a, 4096, 64);
            b.init_pchase(buf_b, 4096, 64);
            let base = a.buffer_base(buf_a);
            let batch = PchaseBatch {
                base,
                elem_bytes: 64,
                n_elems: n,
                timed_steps: 48,
                space,
                flags: LoadFlags::CACHE_ALL,
                warmup: false,
            };
            let warm_kernel = KernelBuilder::pchase_warm_kernel(
                gpu.vendor(),
                base,
                64,
                n,
                space,
                LoadFlags::CACHE_ALL,
            );
            a.launch(0, 0, &warm_kernel, 0);
            b.pchase_warm_batch(0, 0, &batch);
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.elapsed_cycles(), b.elapsed_cycles());
            let timed_kernel = KernelBuilder::pchase_timed_kernel(
                gpu.vendor(),
                base,
                64,
                48,
                space,
                LoadFlags::CACHE_ALL,
            );
            let want = a.launch(0, 0, &timed_kernel, 32);
            let got = b.pchase_timed_batch(0, 0, &batch, 32);
            assert_eq!(want, got);
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn noisy_measurements_fluctuate_but_stay_centred() {
        let mut gpu = Gpu::new(presets::h100_80().config);
        let l1 = *gpu.config.cache(CacheKind::L1).unwrap();
        let buf = gpu.alloc(MemorySpace::Global, 4096).unwrap();
        let n = gpu.init_pchase(buf, 4096, l1.fetch_granularity as u64);
        let kernel = KernelBuilder::pchase_kernel(
            Vendor::Nvidia,
            gpu.buffer_base(buf),
            l1.fetch_granularity as u64,
            n,
            512,
            MemorySpace::Global,
            LoadFlags::CACHE_ALL,
            true,
        );
        let run = gpu.launch(0, 0, &kernel, 512);
        let mean: f64 =
            run.records.iter().map(|&r| r as f64).sum::<f64>() / run.records.len() as f64;
        let expected = l1.load_latency as f64
            + gpu.config.clock_overhead_cycles as f64
            + STORE_SHARED_COST as f64;
        assert!(
            (mean - expected).abs() < 6.0,
            "mean {mean} vs expected {expected}"
        );
    }
}

//! The Hong–Kim analytical GPU performance model (paper Sec. VI-A).
//!
//! The model's two key indicators are **CWP** (compute warp parallelism —
//! how many warps can execute while one waits on memory) and **MWP**
//! (memory warp parallelism — how many warps can access memory
//! concurrently), Eqs. (3)–(4) of the MT4G paper:
//!
//! ```text
//! CWP' = (mem_cycles + comp_cycles) / comp_cycles
//! CWP  = min(CWP', N)
//! MWP' = mem_latency / departure_delay
//! MWP'' = mem_bandwidth / (BW_per_warp × #SMs),
//!         BW_per_warp = freq × load_bytes_per_warp / mem_latency
//! MWP  = min(MWP', MWP'', N)
//! ```
//!
//! with `N` the number of active warps per SM. If CWP exceeds MWP the
//! application is memory-bound, otherwise compute-bound. The GPU-side
//! parameters — `mem_latency`, `mem_bandwidth`, `mem_freq` and the launch
//! bounds that cap `N` — come straight from an MT4G [`Report`], which is
//! exactly the integration the paper demonstrates; the original model only
//! covers main-memory transfers, but because MT4G reports the full
//! hierarchy the parameters can equally be taken at L1 or L2
//! ([`GpuParams::from_report`]'s `level`).

use mt4g_core::report::Report;
use mt4g_sim::device::CacheKind;
use serde::{Deserialize, Serialize};

/// GPU-specific model parameters, obtainable from an MT4G report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuParams {
    /// Memory latency in core cycles at the modeled level.
    pub mem_latency: f64,
    /// Achieved memory bandwidth in bytes/cycle (whole GPU).
    pub mem_bandwidth_bytes_per_cycle: f64,
    /// Departure delay between consecutive memory warps on one SM
    /// (cycles); coalesced accesses pipeline tightly.
    pub departure_delay: f64,
    /// Number of SMs.
    pub num_sms: u32,
    /// Bytes one warp's memory instruction moves (warp_size × 4 B for
    /// 32-bit loads).
    pub load_bytes_per_warp: f64,
    /// Maximum active warps per SM (caps both CWP and MWP).
    pub max_warps_per_sm: f64,
}

impl GpuParams {
    /// Extracts the model parameters from an MT4G report at the given
    /// memory level ([`CacheKind::DeviceMemory`] for the original model;
    /// `L2` or `L1` for the hierarchy-extended variant).
    ///
    /// Returns `None` when the report lacks the latency for that level
    /// (e.g. AMD L3, one of the paper's declared gaps).
    pub fn from_report(report: &Report, level: CacheKind) -> Option<GpuParams> {
        let element = report.element(level)?;
        let latency = element.load_latency.value()?.mean;
        // Bandwidth: the level's own measured bandwidth if present (L2,
        // L3, device memory), otherwise fall back to device memory.
        let bw_gibs = element.read_bandwidth_gibs.value().copied().or_else(|| {
            report
                .element(CacheKind::DeviceMemory)?
                .read_bandwidth_gibs
                .value()
                .copied()
        })?;
        let clock_hz = report.device.clock_mhz as f64 * 1e6;
        let bytes_per_cycle = bw_gibs * (1u64 << 30) as f64 / clock_hz;
        let c = &report.compute;
        Some(GpuParams {
            mem_latency: latency,
            mem_bandwidth_bytes_per_cycle: bytes_per_cycle,
            departure_delay: 4.0, // coalesced departure delay (Hong–Kim)
            num_sms: c.num_sms,
            load_bytes_per_warp: c.warp_size as f64 * 4.0,
            max_warps_per_sm: (c.max_threads_per_sm / c.warp_size.max(1)) as f64,
        })
    }
}

/// Application-specific model parameters (from profiling — Nsight Compute
/// or rocprof in the paper's workflow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Computation cycles of one warp between memory periods
    /// (`comp_cycles`).
    pub comp_cycles: f64,
    /// Memory waiting cycles of one warp (`mem_cycles`); for a single
    /// level this is `#mem_insts × mem_latency`.
    pub mem_insts: f64,
    /// Active warps per SM the launch actually achieves (`N`), before the
    /// hardware cap.
    pub active_warps_per_sm: f64,
    /// Total warps the kernel executes per SM (repetitions).
    pub total_warps_per_sm: f64,
}

/// Whether the kernel is limited by memory or compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// `CWP > MWP`: warps pile up behind the memory system.
    MemoryBound,
    /// `CWP <= MWP`: the memory system keeps up; ALUs dominate.
    ComputeBound,
}

/// Full model output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelOutput {
    /// Compute warp parallelism after the `N` cap.
    pub cwp: f64,
    /// Memory warp parallelism after all three caps.
    pub mwp: f64,
    /// Raw MWP from latency/departure-delay.
    pub mwp_parallelism: f64,
    /// Raw MWP from peak bandwidth.
    pub mwp_bandwidth: f64,
    /// Bottleneck classification.
    pub bound: Bound,
    /// Estimated execution cycles per SM.
    pub estimated_cycles: f64,
}

/// Evaluates the model.
pub fn evaluate(gpu: &GpuParams, app: &AppParams) -> ModelOutput {
    let n = app.active_warps_per_sm.min(gpu.max_warps_per_sm).max(1.0);
    let mem_cycles = app.mem_insts * gpu.mem_latency;
    let comp_cycles = app.comp_cycles.max(1.0);

    // Eq. (3)
    let cwp_prime = (mem_cycles + comp_cycles) / comp_cycles;
    let cwp = cwp_prime.min(n);

    // Eq. (4)
    let mwp_parallelism = gpu.mem_latency / gpu.departure_delay.max(1.0);
    let bw_per_warp = gpu.load_bytes_per_warp / gpu.mem_latency; // bytes/cycle/warp
    let mwp_bandwidth =
        gpu.mem_bandwidth_bytes_per_cycle / (bw_per_warp * gpu.num_sms as f64).max(1e-9);
    let mwp = mwp_parallelism.min(mwp_bandwidth).min(n).max(1.0);

    let bound = if cwp > mwp {
        Bound::MemoryBound
    } else {
        Bound::ComputeBound
    };

    // Execution-cycle estimate, the three Hong–Kim cases. `comp_p` is the
    // computation between two memory periods.
    let reps = (app.total_warps_per_sm / n).max(1.0);
    let comp_p = comp_cycles / app.mem_insts.max(1.0);
    let cycles_one_batch = if (mwp - n).abs() < f64::EPSILON && (cwp - n).abs() < f64::EPSILON {
        // Case 3: not enough warps to hide anything.
        mem_cycles + comp_cycles + comp_p * (mwp - 1.0)
    } else if cwp >= mwp {
        // Case 1: memory bound — memory periods serialise in groups of MWP.
        mem_cycles * (n / mwp) + comp_p * (mwp - 1.0)
    } else {
        // Case 2: compute bound — one memory latency exposed.
        gpu.mem_latency + comp_cycles * n
    };
    ModelOutput {
        cwp,
        mwp,
        mwp_parallelism,
        mwp_bandwidth,
        bound,
        estimated_cycles: cycles_one_batch * reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h100_like() -> GpuParams {
        GpuParams {
            mem_latency: 843.0,
            mem_bandwidth_bytes_per_cycle: 1380.0, // ~2.5 TiB/s at 1.98 GHz
            departure_delay: 4.0,
            num_sms: 132,
            load_bytes_per_warp: 128.0,
            max_warps_per_sm: 64.0,
        }
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        let app = AppParams {
            comp_cycles: 40.0,
            mem_insts: 32.0,
            active_warps_per_sm: 48.0,
            total_warps_per_sm: 480.0,
        };
        // A stream kernel issues 128-bit vector loads: 512 B per warp and
        // memory instruction, which pushes the bandwidth cap (MWP'') below
        // the warp count.
        let gpu = GpuParams {
            load_bytes_per_warp: 512.0,
            ..h100_like()
        };
        let out = evaluate(&gpu, &app);
        assert_eq!(out.bound, Bound::MemoryBound);
        assert!(out.cwp > out.mwp);
        assert!(out.estimated_cycles > 0.0);
    }

    #[test]
    fn arithmetic_kernel_is_compute_bound() {
        let app = AppParams {
            comp_cycles: 100_000.0,
            mem_insts: 2.0,
            active_warps_per_sm: 16.0,
            total_warps_per_sm: 64.0,
        };
        let out = evaluate(&h100_like(), &app);
        assert_eq!(out.bound, Bound::ComputeBound);
    }

    #[test]
    fn cwp_and_mwp_are_capped_by_active_warps() {
        let app = AppParams {
            comp_cycles: 1.0,
            mem_insts: 1000.0,
            active_warps_per_sm: 8.0,
            total_warps_per_sm: 8.0,
        };
        let out = evaluate(&h100_like(), &app);
        assert!(out.cwp <= 8.0);
        assert!(out.mwp <= 8.0);
    }

    #[test]
    fn more_bandwidth_raises_mwp() {
        let app = AppParams {
            comp_cycles: 10.0,
            mem_insts: 50.0,
            active_warps_per_sm: 64.0,
            total_warps_per_sm: 64.0,
        };
        let mut fast = h100_like();
        fast.mem_bandwidth_bytes_per_cycle *= 4.0;
        let slow_out = evaluate(&h100_like(), &app);
        let fast_out = evaluate(&fast, &app);
        assert!(fast_out.mwp_bandwidth > slow_out.mwp_bandwidth);
    }

    #[test]
    fn memory_bound_kernel_slows_with_higher_latency() {
        let app = AppParams {
            comp_cycles: 20.0,
            mem_insts: 64.0,
            active_warps_per_sm: 64.0,
            total_warps_per_sm: 640.0,
        };
        let near = GpuParams {
            mem_latency: 220.0, // L2-resident working set
            ..h100_like()
        };
        let far = h100_like(); // DRAM
        let near_out = evaluate(&near, &app);
        let far_out = evaluate(&far, &app);
        assert!(near_out.estimated_cycles < far_out.estimated_cycles);
    }
}

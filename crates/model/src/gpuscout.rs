//! GPUscout-style bottleneck analysis backed by MT4G topology (paper
//! Sec. VI-B).
//!
//! GPUscout detects memory-related bottlenecks from profiler counters and
//! recommends fixes; its recommendations are "closely tied to the GPU
//! topology: for instance, register spilling is tied to the number of
//! cores and registers per SM, or the L1 hit rate is tied to the L1 size".
//! The GUI's Memory Graph view (the paper's Fig. 4) joins the counters
//! with MT4G's sizes. This module implements that join: profiler counters
//! and an MT4G [`Report`] → findings with topology-grounded
//! recommendations, plus the textual memory-graph rendering that the
//! `fig4` harness prints.

use mt4g_core::report::Report;
use mt4g_sim::device::CacheKind;
use serde::{Deserialize, Serialize};

/// Profiler counters of one kernel (Nsight Compute / rocprof analogue).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// L1 (unified) hit rate in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// L2 hit rate in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// Bytes moved between L1 and L2.
    pub l1_l2_traffic_bytes: u64,
    /// Bytes moved between L2 and device memory.
    pub l2_dram_traffic_bytes: u64,
    /// Registers allocated per thread.
    pub regs_per_thread: u32,
    /// Spilled register bytes per thread (local-memory traffic).
    pub spill_bytes_per_thread: u32,
    /// Threads per block of the launch.
    pub threads_per_block: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_bytes_per_block: u64,
    /// Working-set estimate of the kernel's hot data, bytes.
    pub working_set_bytes: u64,
}

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational.
    Info,
    /// Likely measurable impact.
    Warning,
    /// Dominant bottleneck.
    Critical,
}

/// One bottleneck finding with a topology-grounded recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Severity.
    pub severity: Severity,
    /// Short title.
    pub title: String,
    /// Recommendation referencing concrete MT4G attributes.
    pub recommendation: String,
}

/// Runs the analysis.
pub fn analyze(report: &Report, k: &KernelCounters) -> Vec<Finding> {
    let mut findings = Vec::new();
    let compute = &report.compute;

    // --- Register pressure / spilling (tied to regs per SM).
    let max_concurrent_threads = compute
        .regs_per_sm
        .checked_div(k.regs_per_thread)
        .unwrap_or(compute.max_threads_per_sm);
    if k.spill_bytes_per_thread > 0 {
        findings.push(Finding {
            severity: Severity::Critical,
            title: "register spilling".into(),
            recommendation: format!(
                "{} B/thread spill to local memory; the SM offers {} registers \
                 shared by up to {} threads — reduce per-thread live state or \
                 cap the block at {} threads to restore full-register occupancy",
                k.spill_bytes_per_thread,
                compute.regs_per_sm,
                compute.max_threads_per_sm,
                max_concurrent_threads.min(compute.max_threads_per_block)
            ),
        });
    } else if max_concurrent_threads < compute.max_threads_per_sm {
        findings.push(Finding {
            severity: Severity::Warning,
            title: "register-limited occupancy".into(),
            recommendation: format!(
                "{} regs/thread limit the SM to {} of {} threads",
                k.regs_per_thread, max_concurrent_threads, compute.max_threads_per_sm
            ),
        });
    }

    // --- L1 hit rate vs L1 size (the Fig. 4 headline join).
    let l1_kind = if report.element(CacheKind::L1).is_some() {
        CacheKind::L1
    } else {
        CacheKind::VL1
    };
    if let Some(l1_size) = report.element(l1_kind).and_then(|e| e.size.value()) {
        if k.l1_hit_rate < 0.5 {
            let fits = k.working_set_bytes <= *l1_size;
            findings.push(Finding {
                severity: if fits {
                    Severity::Warning
                } else {
                    Severity::Critical
                },
                title: format!("low {} hit rate", l1_kind.label()),
                recommendation: if fits {
                    format!(
                        "hit rate {:.0}% although the {} B working set fits the \
                         {} B {} — check the access pattern for conflicting strides",
                        k.l1_hit_rate * 100.0,
                        k.working_set_bytes,
                        l1_size,
                        l1_kind.label()
                    )
                } else {
                    format!(
                        "hit rate {:.0}%: the {} B working set exceeds the {} B {} — \
                         re-block the problem to tiles of at most {} B",
                        k.l1_hit_rate * 100.0,
                        k.working_set_bytes,
                        l1_size,
                        l1_kind.label(),
                        l1_size
                    )
                },
            });
        }
    }

    // --- L2 fit (tied to the *visible segment*, not the API total).
    if let Some(e) = report.element(CacheKind::L2) {
        if let (Some(&seg), Some(amount)) = (e.size.value(), e.amount.value()) {
            let visible = if amount.count > 0
                && matches!(e.size, mt4g_core::report::Attribute::FromApi { .. })
            {
                seg / amount.count as u64
            } else {
                seg
            };
            if k.l2_hit_rate < 0.5 && k.working_set_bytes > visible {
                findings.push(Finding {
                    severity: Severity::Warning,
                    title: "L2 capacity exceeded".into(),
                    recommendation: format!(
                        "working set {} B exceeds the {} B L2 visible to one SM \
                         ({} segment(s)) — expect device-memory bandwidth beyond it",
                        k.working_set_bytes, visible, amount.count
                    ),
                });
            }
        }
    }

    // --- Shared-memory occupancy.
    let scratch_kind = if report.element(CacheKind::SharedMemory).is_some() {
        CacheKind::SharedMemory
    } else {
        CacheKind::Lds
    };
    if let Some(total) = report.element(scratch_kind).and_then(|e| e.size.value()) {
        if k.shared_bytes_per_block > 0 {
            let blocks = total / k.shared_bytes_per_block.max(1);
            if blocks < compute.max_blocks_per_sm as u64 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    title: format!("{}-limited occupancy", scratch_kind.label()),
                    recommendation: format!(
                        "{} B/block of {} caps residency at {} blocks/SM (hardware \
                         allows {})",
                        k.shared_bytes_per_block,
                        scratch_kind.label(),
                        blocks,
                        compute.max_blocks_per_sm
                    ),
                });
            }
        }
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

/// Renders the GPUscout-GUI Memory-Graph component (Fig. 4) as text:
/// boxes for the memory elements annotated with MT4G sizes, arrows with
/// profiler traffic.
pub fn memory_graph(report: &Report, k: &KernelCounters) -> String {
    let size_of = |kind: CacheKind| -> String {
        report
            .element(kind)
            .and_then(|e| e.size.value())
            .map(|&s| mt4g_core::report::format_bytes(s))
            .unwrap_or_else(|| "?".into())
    };
    let l1 = if report.element(CacheKind::L1).is_some() {
        CacheKind::L1
    } else {
        CacheKind::VL1
    };
    let scratch = if report.element(CacheKind::SharedMemory).is_some() {
        CacheKind::SharedMemory
    } else {
        CacheKind::Lds
    };
    format!(
        "Kernel\n  |\n  v\n[{l1_label} {l1_size}]  hit {l1_hit:.0}%   [{sc_label} {sc_size}]\n  |  {l1l2} B\n  v\n[L2 {l2_size}]  hit {l2_hit:.0}%\n  |  {l2d} B\n  v\n[Device {dram_size}]\n",
        l1_label = l1.label(),
        l1_size = size_of(l1),
        l1_hit = k.l1_hit_rate * 100.0,
        sc_label = scratch.label(),
        sc_size = size_of(scratch),
        l1l2 = k.l1_l2_traffic_bytes,
        l2_size = size_of(CacheKind::L2),
        l2_hit = k.l2_hit_rate * 100.0,
        l2d = k.l2_dram_traffic_bytes,
        dram_size = size_of(CacheKind::DeviceMemory),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt4g_core::report::{
        AmountReport, AmountScope, Attribute, ComputeInfo, DeviceInfo, RuntimeInfo,
    };
    use mt4g_sim::device::Vendor;

    fn report() -> Report {
        let mut r = Report {
            device: DeviceInfo {
                name: "H100".into(),
                vendor: Vendor::Nvidia,
                compute_capability: "9.0".into(),
                clock_mhz: 1980,
                mem_clock_mhz: 2619,
                bus_width_bits: 5120,
            },
            compute: ComputeInfo {
                num_sms: 132,
                cores_per_sm: 128,
                warp_size: 32,
                warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                max_threads_per_sm: 2048,
                regs_per_block: 65536,
                regs_per_sm: 65536,
                cu_physical_ids: None,
            },
            memory: Vec::new(),
            compute_throughput: Vec::new(),
            tlb: Vec::new(),
            contention: Vec::new(),
            policy: Vec::new(),
            runtime: RuntimeInfo::default(),
        };
        r.element_mut(CacheKind::L1).size = Attribute::Measured {
            value: 243712,
            confidence: 0.99,
        };
        r.element_mut(CacheKind::L2).size = Attribute::FromApi {
            value: 50 * 1024 * 1024,
        };
        r.element_mut(CacheKind::L2).amount = Attribute::Measured {
            value: AmountReport {
                count: 2,
                scope: AmountScope::PerGpu,
            },
            confidence: 0.95,
        };
        r.element_mut(CacheKind::SharedMemory).size = Attribute::FromApi { value: 233472 };
        r.element_mut(CacheKind::DeviceMemory).size = Attribute::FromApi {
            value: 80 * (1 << 30),
        };
        r
    }

    fn healthy_counters() -> KernelCounters {
        KernelCounters {
            l1_hit_rate: 0.92,
            l2_hit_rate: 0.85,
            l1_l2_traffic_bytes: 1 << 24,
            l2_dram_traffic_bytes: 1 << 20,
            regs_per_thread: 32,
            spill_bytes_per_thread: 0,
            threads_per_block: 256,
            shared_bytes_per_block: 0,
            working_set_bytes: 64 * 1024,
        }
    }

    #[test]
    fn healthy_kernel_has_no_critical_findings() {
        let findings = analyze(&report(), &healthy_counters());
        assert!(findings.iter().all(|f| f.severity != Severity::Critical));
    }

    #[test]
    fn spilling_is_critical_and_cites_register_file() {
        let k = KernelCounters {
            spill_bytes_per_thread: 64,
            regs_per_thread: 255,
            ..healthy_counters()
        };
        let findings = analyze(&report(), &k);
        let f = findings
            .iter()
            .find(|f| f.title.contains("spill"))
            .expect("spill finding");
        assert_eq!(f.severity, Severity::Critical);
        assert!(f.recommendation.contains("65536"));
    }

    #[test]
    fn oversized_working_set_cites_the_true_l1_size() {
        let k = KernelCounters {
            l1_hit_rate: 0.2,
            working_set_bytes: 1 << 20, // 1 MiB >> 238 KiB
            ..healthy_counters()
        };
        let findings = analyze(&report(), &k);
        let f = findings
            .iter()
            .find(|f| f.title.contains("hit rate"))
            .expect("L1 finding");
        assert_eq!(f.severity, Severity::Critical);
        assert!(f.recommendation.contains("243712"));
    }

    #[test]
    fn fitting_working_set_downgrades_to_pattern_warning() {
        let k = KernelCounters {
            l1_hit_rate: 0.2,
            working_set_bytes: 100 * 1024, // fits 238 KiB
            ..healthy_counters()
        };
        let findings = analyze(&report(), &k);
        let f = findings
            .iter()
            .find(|f| f.title.contains("hit rate"))
            .unwrap();
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.recommendation.contains("access pattern"));
    }

    #[test]
    fn l2_segment_visibility_is_used_not_api_total() {
        // Working set of 30 MiB: below the 50 MiB API total but above the
        // 25 MiB segment one SM can reach.
        let k = KernelCounters {
            l2_hit_rate: 0.3,
            working_set_bytes: 30 * 1024 * 1024,
            ..healthy_counters()
        };
        let findings = analyze(&report(), &k);
        let f = findings
            .iter()
            .find(|f| f.title.contains("L2"))
            .expect("L2 finding");
        assert!(f.recommendation.contains("26214400")); // 25 MiB segment
    }

    #[test]
    fn shared_memory_occupancy_finding() {
        let k = KernelCounters {
            shared_bytes_per_block: 48 * 1024,
            ..healthy_counters()
        };
        let findings = analyze(&report(), &k);
        let f = findings
            .iter()
            .find(|f| f.title.contains("occupancy"))
            .expect("occupancy finding");
        assert!(f.recommendation.contains("4 blocks/SM"));
    }

    #[test]
    fn memory_graph_contains_sizes_and_rates() {
        let g = memory_graph(&report(), &healthy_counters());
        assert!(g.contains("238KiB"));
        assert!(g.contains("50MiB"));
        assert!(g.contains("hit 92%"));
    }
}

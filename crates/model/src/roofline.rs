//! Roofline model fed by MT4G bandwidths (paper Sec. VI-A closing remark:
//! "these parameters obtained via MT4G can also support ... the Roofline
//! model").

use mt4g_core::report::Report;
use mt4g_sim::device::CacheKind;
use serde::{Deserialize, Serialize};

/// One bandwidth ceiling of the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// Which memory level provides this ceiling.
    pub level: CacheKind,
    /// Bandwidth in GiB/s.
    pub bandwidth_gibs: f64,
    /// Arithmetic intensity (FLOP/byte) where this ceiling meets the
    /// compute roof.
    pub ridge_point: f64,
}

/// A roofline: one compute roof plus one ceiling per measured level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak FP32 throughput in GFLOP/s (cores × 2 (FMA) × clock).
    pub peak_gflops: f64,
    /// Bandwidth ceilings, fastest level first.
    pub ceilings: Vec<Ceiling>,
}

impl Roofline {
    /// Builds the roofline from an MT4G report.
    pub fn from_report(report: &Report) -> Roofline {
        let c = &report.compute;
        let peak_gflops =
            c.num_sms as f64 * c.cores_per_sm as f64 * 2.0 * report.device.clock_mhz as f64 / 1e3;
        let mut ceilings = Vec::new();
        for level in [CacheKind::L2, CacheKind::L3, CacheKind::DeviceMemory] {
            if let Some(e) = report.element(level) {
                if let Some(&bw) = e.read_bandwidth_gibs.value() {
                    ceilings.push(Ceiling {
                        level,
                        bandwidth_gibs: bw,
                        ridge_point: peak_gflops / (bw * 1.073_741_824), // GiB -> GB
                    });
                }
            }
        }
        ceilings.sort_by(|a, b| b.bandwidth_gibs.total_cmp(&a.bandwidth_gibs));
        Roofline {
            peak_gflops,
            ceilings,
        }
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` (FLOP/byte) when
    /// the working set is served by `level`.
    pub fn attainable(&self, level: CacheKind, ai: f64) -> Option<f64> {
        let ceiling = self.ceilings.iter().find(|c| c.level == level)?;
        Some(
            self.peak_gflops
                .min(ai * ceiling.bandwidth_gibs * 1.073_741_824),
        )
    }

    /// Whether a kernel at intensity `ai` against `level` is memory-bound.
    pub fn is_memory_bound(&self, level: CacheKind, ai: f64) -> Option<bool> {
        let ceiling = self.ceilings.iter().find(|c| c.level == level)?;
        Some(ai < ceiling.ridge_point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt4g_core::report::{Attribute, ComputeInfo, DeviceInfo, RuntimeInfo};
    use mt4g_sim::device::Vendor;

    fn synthetic_report() -> Report {
        let mut r = Report {
            device: DeviceInfo {
                name: "X".into(),
                vendor: Vendor::Nvidia,
                compute_capability: "9.0".into(),
                clock_mhz: 2000,
                mem_clock_mhz: 2619,
                bus_width_bits: 5120,
            },
            compute: ComputeInfo {
                num_sms: 100,
                cores_per_sm: 128,
                warp_size: 32,
                warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                max_threads_per_sm: 2048,
                regs_per_block: 65536,
                regs_per_sm: 65536,
                cu_physical_ids: None,
            },
            memory: Vec::new(),
            compute_throughput: Vec::new(),
            tlb: Vec::new(),
            contention: Vec::new(),
            policy: Vec::new(),
            runtime: RuntimeInfo::default(),
        };
        r.element_mut(CacheKind::L2).read_bandwidth_gibs = Attribute::Measured {
            value: 4000.0,
            confidence: 0.9,
        };
        r.element_mut(CacheKind::DeviceMemory).read_bandwidth_gibs = Attribute::Measured {
            value: 2500.0,
            confidence: 0.9,
        };
        r
    }

    #[test]
    fn peak_and_ceilings_from_report() {
        let rl = Roofline::from_report(&synthetic_report());
        // 100 SMs * 128 cores * 2 * 2 GHz = 51200 GFLOP/s
        assert!((rl.peak_gflops - 51_200.0).abs() < 1.0);
        assert_eq!(rl.ceilings.len(), 2);
        assert_eq!(rl.ceilings[0].level, CacheKind::L2);
    }

    #[test]
    fn attainable_is_bandwidth_limited_below_ridge() {
        let rl = Roofline::from_report(&synthetic_report());
        let low_ai = rl.attainable(CacheKind::DeviceMemory, 0.5).unwrap();
        assert!(low_ai < rl.peak_gflops * 0.1);
        let high_ai = rl.attainable(CacheKind::DeviceMemory, 1e4).unwrap();
        assert_eq!(high_ai, rl.peak_gflops);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let rl = Roofline::from_report(&synthetic_report());
        let ridge = rl.ceilings[1].ridge_point;
        assert_eq!(
            rl.is_memory_bound(CacheKind::DeviceMemory, ridge * 0.5),
            Some(true)
        );
        assert_eq!(
            rl.is_memory_bound(CacheKind::DeviceMemory, ridge * 2.0),
            Some(false)
        );
    }

    #[test]
    fn l2_ceiling_beats_dram_ceiling() {
        let rl = Roofline::from_report(&synthetic_report());
        let at_l2 = rl.attainable(CacheKind::L2, 1.0).unwrap();
        let at_dram = rl.attainable(CacheKind::DeviceMemory, 1.0).unwrap();
        assert!(at_l2 > at_dram);
    }
}

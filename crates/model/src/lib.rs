//! # mt4g-model — the downstream use cases of MT4G (paper Sec. VI)
//!
//! MT4G's value proposition is that its report feeds other tools. This
//! crate reproduces the three integrations the paper demonstrates, plus
//! the roofline extension it mentions:
//!
//! * [`hongkim`] — the Hong–Kim warp-parallelism performance model
//!   (CWP/MWP, Eqs. 3–4), parameterised directly from an MT4G report
//!   (Sec. VI-A),
//! * [`roofline`] — roofline ceilings and ridge points from MT4G
//!   bandwidths,
//! * [`gpuscout`] — GPUscout-style bottleneck findings joining profiler
//!   counters with topology attributes, and the Fig. 4 memory-graph view
//!   (Sec. VI-B),
//! * [`syssage`] — a sys-sage-style component tree with dynamic MIG
//!   overlays, answering Fig. 5's "what L2 do I actually see?"
//!   (Sec. VI-C).
//!
//! # Paper map
//!
//! | Paper reference | Module |
//! |---|---|
//! | Sec. VI-A, Eqs. (3)–(4) Hong–Kim CWP/MWP | [`hongkim`] |
//! | Sec. VI-B GPUscout integration, Fig. 4 memory graph | [`gpuscout`] |
//! | Sec. VI-C sys-sage integration, Fig. 5 MIG views | [`syssage`] |
//! | Roofline extension from MT4G bandwidths | [`roofline`] |
//!
//! Every model consumes the [`mt4g_core::report::Report`] produced by the
//! discovery suite — including reports reassembled from CI shards with
//! `mt4g merge`, which are byte-identical to single-process runs.

#![deny(missing_docs)]

pub mod gpuscout;
pub mod hongkim;
pub mod roofline;
pub mod syssage;

pub use gpuscout::{analyze, Finding, KernelCounters, Severity};
pub use hongkim::{evaluate, AppParams, Bound, GpuParams, ModelOutput};
pub use roofline::Roofline;
pub use syssage::GpuTopology;

//! sys-sage-style dynamic topology representation (paper Sec. VI-C).
//!
//! sys-sage manages HPC system topologies as attribute-annotated component
//! trees; MT4G integration is what extends it to GPUs. This module builds
//! such a tree from an MT4G [`Report`] (the *static* context) and overlays
//! *dynamic* configuration — NVIDIA MIG partitioning, queried via
//! nvml in the real system — to answer the question Fig. 5 poses: *what
//! L2 capacity and bandwidth does a kernel actually see right now?*

use std::collections::BTreeMap;

use mt4g_core::report::{AmountScope, Report};
use mt4g_sim::device::{CacheKind, Vendor};
use mt4g_sim::mig::MigProfile;
use serde::{Deserialize, Serialize};

/// Component type of a topology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// The GPU itself.
    Gpu,
    /// A streaming multiprocessor / compute unit group node.
    SmGroup,
    /// A memory element (cache, scratchpad, device memory).
    Memory(CacheKind),
}

/// One node of the topology tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Display name.
    pub name: String,
    /// Component type.
    pub kind: ComponentKind,
    /// Free-form attributes (sizes in bytes, latencies in cycles, ...).
    pub attributes: BTreeMap<String, f64>,
    /// Children.
    pub children: Vec<Node>,
}

impl Node {
    fn new(name: impl Into<String>, kind: ComponentKind) -> Node {
        Node {
            name: name.into(),
            kind,
            attributes: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Depth-first search for the first node satisfying `pred`.
    pub fn find(&self, pred: &dyn Fn(&Node) -> bool) -> Option<&Node> {
        if pred(self) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(pred))
    }

    /// Total node count (tree size).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Node::count).sum::<usize>()
    }
}

/// The static topology plus the currently applied dynamic configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuTopology {
    /// Component tree root.
    pub root: Node,
    /// The MIG profile in effect (`None` = full GPU / not NVIDIA).
    pub mig: Option<String>,
}

impl GpuTopology {
    /// Builds the static topology tree from an MT4G report.
    pub fn from_report(report: &Report) -> GpuTopology {
        let mut root = Node::new(report.device.name.clone(), ComponentKind::Gpu);
        root.attributes
            .insert("clock_mhz".into(), report.device.clock_mhz as f64);
        root.attributes
            .insert("num_sms".into(), report.compute.num_sms as f64);

        // Per-SM subtree (one representative node — sys-sage stores one per
        // SM; a count attribute keeps this reproduction's trees small).
        let mut sm = Node::new(
            if report.device.vendor == Vendor::Nvidia {
                "SM"
            } else {
                "CU"
            },
            ComponentKind::SmGroup,
        );
        sm.attributes
            .insert("count".into(), report.compute.num_sms as f64);
        sm.attributes
            .insert("cores".into(), report.compute.cores_per_sm as f64);
        sm.attributes
            .insert("warp_size".into(), report.compute.warp_size as f64);

        let per_sm = [
            CacheKind::L1,
            CacheKind::Texture,
            CacheKind::Readonly,
            CacheKind::ConstL1,
            CacheKind::SharedMemory,
            CacheKind::VL1,
            CacheKind::SL1D,
            CacheKind::Lds,
        ];
        for m in &report.memory {
            let mut node = Node::new(m.kind.label(), ComponentKind::Memory(m.kind));
            if let Some(&size) = m.size.value() {
                node.attributes.insert("size_bytes".into(), size as f64);
                // For segmented GPU-level caches the report's size is the
                // API total; what one SM can address is a single segment —
                // the quantity Fig. 5 is about.
                if let Some(amount) = m.amount.value() {
                    if amount.scope == AmountScope::PerGpu && amount.count > 1 {
                        node.attributes
                            .insert("segment_bytes".into(), size as f64 / amount.count as f64);
                    }
                }
            }
            if let Some(lat) = m.load_latency.value() {
                node.attributes
                    .insert("load_latency_cycles".into(), lat.mean);
            }
            if let Some(&bw) = m.read_bandwidth_gibs.value() {
                node.attributes.insert("read_bw_gibs".into(), bw);
            }
            if let Some(&line) = m.cache_line_bytes.value() {
                node.attributes.insert("line_bytes".into(), line as f64);
            }
            if let Some(amount) = m.amount.value() {
                node.attributes.insert("amount".into(), amount.count as f64);
            }
            if per_sm.contains(&m.kind) {
                sm.children.push(node);
            } else {
                root.children.push(node);
            }
        }
        root.children.push(sm);
        GpuTopology { root, mig: None }
    }

    /// Applies a MIG profile: scales the SM count, L2 and device-memory
    /// capacities/bandwidths — what sys-sage does when it combines static
    /// MT4G data with a dynamic `nvml` query.
    pub fn apply_mig(&mut self, profile: &MigProfile) {
        let mem_frac = profile.memory_fraction();
        let compute_frac = profile.compute_slices as f64 / profile.compute_total as f64;
        self.mig = Some(profile.name.to_string());
        if let Some(sms) = self.root.attributes.get_mut("num_sms") {
            *sms = (*sms * compute_frac).floor().max(1.0);
        }
        for child in &mut self.root.children {
            match child.kind {
                ComponentKind::Memory(CacheKind::L2) => {
                    // The instance owns `mem_frac` of the total L2; one SM
                    // still sees at most one physical segment of it.
                    let total = child.attributes.get("size_bytes").copied().unwrap_or(0.0);
                    let segment = child
                        .attributes
                        .get("segment_bytes")
                        .copied()
                        .unwrap_or(total);
                    let own_total = total * mem_frac;
                    child.attributes.insert("size_bytes".into(), own_total);
                    child
                        .attributes
                        .insert("segment_bytes".into(), own_total.min(segment));
                    if let Some(bw) = child.attributes.get_mut("read_bw_gibs") {
                        *bw *= mem_frac;
                    }
                }
                ComponentKind::Memory(CacheKind::DeviceMemory) => {
                    for key in ["size_bytes", "read_bw_gibs"] {
                        if let Some(v) = child.attributes.get_mut(key) {
                            *v *= mem_frac;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The L2 capacity one SM can currently address — the vertical lines
    /// of Fig. 5. On the full GPU this is one *segment* (total/amount);
    /// inside a MIG slice it is the slice's L2, capped at one segment.
    pub fn visible_l2_bytes(&self) -> Option<u64> {
        let l2 = self
            .root
            .find(&|n| n.kind == ComponentKind::Memory(CacheKind::L2))?;
        let size = l2
            .attributes
            .get("segment_bytes")
            .or_else(|| l2.attributes.get("size_bytes"))?;
        Some(*size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt4g_core::report::{
        AmountReport, AmountScope, Attribute, ComputeInfo, DeviceInfo, RuntimeInfo,
    };

    fn a100_like_report() -> Report {
        let mut r = Report {
            device: DeviceInfo {
                name: "A100".into(),
                vendor: Vendor::Nvidia,
                compute_capability: "8.0".into(),
                clock_mhz: 1410,
                mem_clock_mhz: 1215,
                bus_width_bits: 5120,
            },
            compute: ComputeInfo {
                num_sms: 108,
                cores_per_sm: 64,
                warp_size: 32,
                warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                max_threads_per_sm: 2048,
                regs_per_block: 65536,
                regs_per_sm: 65536,
                cu_physical_ids: None,
            },
            memory: Vec::new(),
            compute_throughput: Vec::new(),
            tlb: Vec::new(),
            contention: Vec::new(),
            policy: Vec::new(),
            runtime: RuntimeInfo::default(),
        };
        // L2: the suite reports the API total (40 MiB) as the size and the
        // measured segmentation (2) as the per-GPU amount.
        r.element_mut(CacheKind::L2).size = Attribute::FromApi {
            value: 40 * 1024 * 1024,
        };
        r.element_mut(CacheKind::L2).amount = Attribute::Measured {
            value: AmountReport {
                count: 2,
                scope: AmountScope::PerGpu,
            },
            confidence: 0.99,
        };
        r.element_mut(CacheKind::L2).read_bandwidth_gibs = Attribute::Measured {
            value: 3600.0,
            confidence: 0.9,
        };
        r.element_mut(CacheKind::L1).size = Attribute::Measured {
            value: 128 * 1024,
            confidence: 0.99,
        };
        r.element_mut(CacheKind::DeviceMemory).size = Attribute::FromApi {
            value: 40 * (1 << 30),
        };
        r
    }

    #[test]
    fn tree_places_l1_under_sm_and_l2_at_gpu_level() {
        let topo = GpuTopology::from_report(&a100_like_report());
        let sm = topo
            .root
            .find(&|n| n.kind == ComponentKind::SmGroup)
            .unwrap();
        assert!(sm
            .children
            .iter()
            .any(|c| c.kind == ComponentKind::Memory(CacheKind::L1)));
        assert!(topo
            .root
            .children
            .iter()
            .any(|c| c.kind == ComponentKind::Memory(CacheKind::L2)));
        assert!(topo.root.count() > 4);
    }

    #[test]
    fn full_gpu_visible_l2_is_one_segment() {
        let topo = GpuTopology::from_report(&a100_like_report());
        assert_eq!(topo.visible_l2_bytes(), Some(20 * 1024 * 1024));
    }

    #[test]
    fn fig5_key_case_4g20gb_keeps_visible_l2() {
        let mut topo = GpuTopology::from_report(&a100_like_report());
        topo.apply_mig(&MigProfile::A100_4G_20GB);
        assert_eq!(topo.visible_l2_bytes(), Some(20 * 1024 * 1024));
        assert_eq!(topo.mig.as_deref(), Some("4g.20gb"));
    }

    #[test]
    fn smaller_mig_shrinks_visible_l2_and_sms() {
        let mut topo = GpuTopology::from_report(&a100_like_report());
        topo.apply_mig(&MigProfile::A100_1G_5GB);
        assert_eq!(topo.visible_l2_bytes(), Some(5 * 1024 * 1024));
        let sms = topo.root.attributes["num_sms"];
        assert_eq!(sms, 15.0); // floor(108 / 7)
    }
}

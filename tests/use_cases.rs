//! Workspace integration tests for the Section VI use cases: the
//! discovery report actually drives the downstream models.

use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::model::gpuscout::{analyze, KernelCounters, Severity};
use mt4g::model::hongkim::{evaluate, AppParams, Bound, GpuParams};
use mt4g::model::{GpuTopology, Roofline};
use mt4g::sim::mig::MigProfile;
use mt4g::sim::presets;
use mt4g::sim::CacheKind;

fn a100_report() -> mt4g::core::report::Report {
    let mut gpu = presets::a100();
    run_discovery(
        &mut gpu,
        &DiscoveryConfig {
            only: Some(vec![
                CacheKind::L1,
                CacheKind::L2,
                CacheKind::SharedMemory,
                CacheKind::DeviceMemory,
            ]),
            ..DiscoveryConfig::fast()
        },
    )
}

#[test]
fn hongkim_parameters_come_from_the_report() {
    let report = a100_report();
    let dram = GpuParams::from_report(&report, CacheKind::DeviceMemory).expect("DRAM params");
    let l2 = GpuParams::from_report(&report, CacheKind::L2).expect("L2 params");
    // MT4G-measured planted values: DRAM 680 cyc, L2 200 cyc.
    assert!(
        (dram.mem_latency - 680.0).abs() < 6.0,
        "{}",
        dram.mem_latency
    );
    assert!((l2.mem_latency - 200.0).abs() < 6.0, "{}", l2.mem_latency);
    assert!(l2.mem_bandwidth_bytes_per_cycle > dram.mem_bandwidth_bytes_per_cycle);

    // A memory-hungry kernel flips from memory- to compute-bound when its
    // working set moves from DRAM to L2.
    let app = AppParams {
        comp_cycles: 1200.0,
        mem_insts: 24.0,
        active_warps_per_sm: 64.0,
        total_warps_per_sm: 640.0,
    };
    let mut dram_vec = dram;
    dram_vec.load_bytes_per_warp *= 4.0; // 128-bit vector loads
    let mut l2_vec = l2;
    l2_vec.load_bytes_per_warp *= 4.0;
    let at_dram = evaluate(&dram_vec, &app);
    let at_l2 = evaluate(&l2_vec, &app);
    assert_eq!(at_dram.bound, Bound::MemoryBound);
    assert!(at_l2.estimated_cycles < at_dram.estimated_cycles);
}

#[test]
fn roofline_ridge_points_are_ordered() {
    let report = a100_report();
    let roofline = Roofline::from_report(&report);
    assert!(roofline.peak_gflops > 0.0);
    assert!(roofline.ceilings.len() >= 2);
    // Faster level => smaller ridge point.
    assert!(roofline.ceilings[0].ridge_point < roofline.ceilings[1].ridge_point);
}

#[test]
fn gpuscout_findings_reference_measured_sizes() {
    let report = a100_report();
    let counters = KernelCounters {
        l1_hit_rate: 0.25,
        l2_hit_rate: 0.8,
        l1_l2_traffic_bytes: 1 << 28,
        l2_dram_traffic_bytes: 1 << 24,
        regs_per_thread: 64,
        spill_bytes_per_thread: 0,
        threads_per_block: 256,
        shared_bytes_per_block: 0,
        working_set_bytes: 4 << 20,
    };
    let findings = analyze(&report, &counters);
    let l1 = findings
        .iter()
        .find(|f| f.title.contains("hit rate"))
        .expect("L1 finding");
    assert_eq!(l1.severity, Severity::Critical);
    // The recommendation cites the discovered L1 size (131072 B).
    assert!(
        l1.recommendation.contains("131072"),
        "{}",
        l1.recommendation
    );
}

#[test]
fn mig_topology_reflects_the_fig5_observations() {
    let report = a100_report();
    let base = GpuTopology::from_report(&report);
    assert_eq!(base.visible_l2_bytes(), Some(20 * 1024 * 1024));

    let mut four = base.clone();
    four.apply_mig(&MigProfile::A100_4G_20GB);
    assert_eq!(four.visible_l2_bytes(), Some(20 * 1024 * 1024));

    let mut one = base.clone();
    one.apply_mig(&MigProfile::A100_1G_5GB);
    assert_eq!(one.visible_l2_bytes(), Some(5 * 1024 * 1024));
}

#[test]
fn coverage_matrix_matches_table_1_for_mi210() {
    use mt4g::core::report::{coverage_matrix, CoverageCell};
    let mut gpu = presets::mi210();
    let mut report = run_discovery(
        &mut gpu,
        &DiscoveryConfig {
            cu_window: 4,
            ..DiscoveryConfig::fast()
        },
    );
    mt4g::core::suite::normalize_report(&mut report, false);
    let rows = coverage_matrix(&report);
    let row = |k: CacheKind| rows.iter().find(|r| r.kind == k).unwrap().clone();

    // vL1: everything benchmarked, bandwidth not measured (low level).
    let vl1 = row(CacheKind::VL1);
    assert_eq!(vl1.size, CoverageCell::Benchmarked);
    assert_eq!(vl1.load_latency, CoverageCell::Benchmarked);
    assert_eq!(vl1.bandwidth, CoverageCell::NotApplicable);
    // L2: size/line/amount via API, latency and fetch granularity
    // benchmarked, bandwidth measured.
    let l2 = row(CacheKind::L2);
    assert_eq!(l2.size, CoverageCell::ViaApi);
    assert_eq!(l2.cache_line, CoverageCell::ViaApi);
    assert_eq!(l2.amount, CoverageCell::ViaApi);
    assert_eq!(l2.load_latency, CoverageCell::Benchmarked);
    assert_eq!(l2.bandwidth, CoverageCell::Benchmarked);
    // sL1d: shared-with is the CU-id list.
    let sl1d = row(CacheKind::SL1D);
    assert_eq!(sl1d.shared_with, CoverageCell::Benchmarked);
    // LDS / device memory sizes from the API.
    assert_eq!(row(CacheKind::Lds).size, CoverageCell::ViaApi);
    assert_eq!(row(CacheKind::DeviceMemory).size, CoverageCell::ViaApi);
}

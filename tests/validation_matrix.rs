//! The full-preset validation matrix as a CI gate: discovery on every
//! Table II GPU must report **zero** ground-truth mismatches.
//!
//! This is the promoted form of `examples/discover_all.rs` — the example
//! keeps the human-readable table, this test fails the build when any
//! discovered attribute deviates from the planted configuration (the
//! historical offender being the MI300X L2 fetch granularity, which the
//! 8-segment L2's backing L3 pushed from 64 B to 128 B until the
//! fetch-granularity scan got its strict target-stratum classifier).

use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::core::validate::validate_against;
use mt4g::sim::presets;
use rayon::prelude::*;

#[test]
fn every_preset_matches_its_planted_ground_truth() {
    let outcomes: Vec<String> = presets::all()
        .into_par_iter()
        .map(|mut gpu| {
            let cfg = gpu.config.clone();
            // Fast scan resolution: the attributes validated here (sizes,
            // line sizes, fetch granularities, latencies) are identical
            // under the fast and thorough configurations; `cu_window`
            // bounds the CU-sharing pass, `jobs: 1` avoids
            // oversubscribing the per-GPU rayon fan-out.
            let dcfg = DiscoveryConfig {
                cu_window: 4,
                jobs: 1,
                ..DiscoveryConfig::fast()
            };
            let report = run_discovery(&mut gpu, &dcfg);
            let v = validate_against(&report, &cfg);
            assert!(v.checked > 0, "{}: validated nothing", cfg.name);
            if v.mismatches == 0 {
                String::new()
            } else {
                format!("{}: {}", cfg.name, v.notes.join("; "))
            }
        })
        .collect();
    let failures: Vec<&String> = outcomes.iter().filter(|s| !s.is_empty()).collect();
    assert!(
        failures.is_empty(),
        "ground-truth mismatches:\n{}",
        failures
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

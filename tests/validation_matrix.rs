//! The (preset × scenario) validation matrix as a CI gate: discovery on
//! every registry preset, under every applicable scenario, must report
//! **zero** ground-truth mismatches against the *scenario-adjusted*
//! planted configuration.
//!
//! This is the promoted form of `examples/discover_all.rs`, widened from
//! the paper's ten Table II GPUs to the full registry (Blackwell, RDNA,
//! hostile variants) and from bare-metal only to the scenario layer:
//!
//! * **bare-metal** — the paper's Section V check, every entry;
//! * **hostile** — amplified noise and locked-down APIs; robustness means
//!   the *answers* don't move (zero mismatches), only confidences do;
//! * **mig:&lt;profile&gt;** — discovery *inside* a MIG instance, validated
//!   against MIG-scaled expectations (e.g. `visible_l2_bytes`), on NVIDIA
//!   entries.
//!
//! Every cell also runs the TLB-reach, shared-L2 contention, and
//! replacement-policy units (`measure_tlb` / `measure_contention` /
//! `measure_policy`): reaches, entry counts, page sizes and walk
//! penalties must match the planted translation hierarchy, contention
//! peers must agree with the planted `l2_segment_of` mapping, classified
//! replacement policies must name the planted per-level evictor, and
//! cells whose environment locks the subsystems down must degrade to
//! honest no-results (never wrong values).

use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::core::validate::validate_scenario;
use mt4g::sim::device::Vendor;
use mt4g::sim::mig::MigProfile;
use mt4g::sim::presets::{Family, PresetEntry, Registry};
use mt4g::sim::scenario::Scenario;
use rayon::prelude::*;

/// Scenarios an entry is validated under. Every entry runs bare-metal and
/// hostile (the hostile transform is idempotent, so the hostile *presets*
/// participate too); NVIDIA entries additionally run inside a MIG
/// partition, alternating profiles across the registry so several
/// different memory fractions stay covered without quadratic cost.
fn scenarios_for(entry: &PresetEntry, nv_index: usize) -> Vec<Scenario> {
    let mut scenarios = vec![Scenario::BareMetal];
    // The hostile transform is idempotent, so for the hostile *presets*
    // the hostile scenario is the same device again — skip the duplicate
    // cell instead of running it twice.
    if entry.family != Family::Hostile {
        scenarios.push(Scenario::Hostile(Default::default()));
    }
    if entry.vendor == Vendor::Nvidia {
        const PROFILES: [MigProfile; 3] = [
            MigProfile::A100_2G_10GB,
            MigProfile::A100_4G_20GB,
            MigProfile::A100_1G_5GB,
        ];
        scenarios.push(Scenario::Mig(PROFILES[nv_index % PROFILES.len()]));
    }
    scenarios
}

#[test]
fn every_preset_matches_its_planted_ground_truth_in_every_scenario() {
    let mut nv_seen = 0usize;
    let mut cells: Vec<(&PresetEntry, Scenario)> = Vec::new();
    for entry in Registry::global().entries() {
        let nv_index = nv_seen;
        if entry.vendor == Vendor::Nvidia {
            nv_seen += 1;
        }
        for scenario in scenarios_for(entry, nv_index) {
            cells.push((entry, scenario));
        }
    }
    // The acceptance floor for this matrix: ≥ 14 presets × ≥ 2 scenarios.
    let presets = Registry::global().entries().len();
    assert!(presets >= 14, "registry shrank below the matrix floor");
    assert!(cells.len() >= presets * 2, "scenario coverage shrank");

    let outcomes: Vec<String> = cells
        .into_par_iter()
        .map(|(entry, scenario)| {
            let full = entry.gpu().config;
            let mut gpu = scenario.realize(entry.gpu()).expect("scenario applies");
            let tag = format!("{} × {}", entry.name, scenario.label());
            // Fast scan resolution: the attributes validated here (sizes,
            // line sizes, fetch granularities, latencies) are identical
            // under the fast and thorough configurations; `cu_window`
            // bounds the CU-sharing pass, `jobs: 1` avoids
            // oversubscribing the per-cell rayon fan-out.
            let dcfg = DiscoveryConfig {
                cu_window: 4,
                jobs: 1,
                measure_tlb: true,
                measure_contention: true,
                measure_policy: true,
                ..DiscoveryConfig::fast()
            };
            let report = run_discovery(&mut gpu, &dcfg);
            let v = validate_scenario(&report, &full, &scenario).expect("scenario applies");
            assert!(v.checked > 0, "{tag}: validated nothing");

            // Coverage, not just correctness: every cell must carry both
            // extension sections, and cells whose environment does not
            // lock the new subsystems down must *measure* them (TLB reach
            // needs the page-size API; contention needs co-residency and
            // CU pinning).
            let quirks = gpu.config.quirks;
            assert_eq!(report.tlb.len(), 2, "{tag}: L1+L2 TLB rows expected");
            if !quirks.page_size_api_unavailable {
                for row in &report.tlb {
                    assert!(
                        row.reach_bytes.is_available(),
                        "{tag}: {} reach not discovered",
                        row.level.label()
                    );
                }
            }
            assert_eq!(report.contention.len(), 1, "{tag}: contention row expected");
            if !quirks.no_co_residency && !quirks.no_cu_pinning {
                assert!(
                    report.contention[0].solo_latency_cycles.is_available(),
                    "{tag}: contention not measured"
                );
            }
            assert_eq!(report.policy.len(), 1, "{tag}: policy row expected");
            if quirks.eviction_probe_unavailable {
                // Co-runner pollution: the probe must degrade to an honest
                // no-result, never convict a neighbour's traffic.
                assert!(
                    !report.policy[0].policy.is_available(),
                    "{tag}: policy verdict despite eviction_probe_unavailable"
                );
            } else {
                assert!(
                    report.policy[0].policy.is_available(),
                    "{tag}: replacement policy not classified"
                );
            }

            if v.mismatches == 0 {
                String::new()
            } else {
                format!("{tag}: {}", v.notes.join("; "))
            }
        })
        .collect();
    let failures: Vec<&String> = outcomes.iter().filter(|s| !s.is_empty()).collect();
    assert!(
        failures.is_empty(),
        "ground-truth mismatches:\n{}",
        failures
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The hostile entries must actually be stress variants: same planted
/// geometry as their base preset, different noise and quirks. Guards the
/// registry against a hostile entry silently drifting to easier ground
/// truth.
#[test]
fn hostile_entries_share_their_base_geometry() {
    let reg = Registry::global();
    for (hostile, base) in [("H100-hostile", "H100-80"), ("MI210-hostile", "MI210")] {
        let h = reg.get(hostile).unwrap().gpu();
        let b = reg.get(base).unwrap().gpu();
        assert_eq!(
            h.config.caches, b.config.caches,
            "{hostile} must plant {base}'s cache geometry"
        );
        assert_eq!(h.config.chip, b.config.chip);
        assert_ne!(h.noise(), b.noise(), "{hostile} must amplify noise");
        assert_eq!(
            reg.get(hostile).unwrap().family,
            Family::Hostile,
            "{hostile} belongs to the hostile family"
        );
    }
}

//! Workspace integration tests: complete discovery runs validated against
//! planted ground truth, across crates (sim → core → report).

use mt4g::core::report::{Attribute, Report};
use mt4g::core::suite::{normalize_report, run_discovery, DiscoveryConfig};
use mt4g::sim::device::{CacheKind, DeviceConfig};
use mt4g::sim::presets;

fn discover(mut gpu: mt4g::sim::Gpu, cfg: DiscoveryConfig) -> (Report, DeviceConfig) {
    let device_cfg = gpu.config.clone();
    let has_l3 = device_cfg.cache(CacheKind::L3).is_some();
    let mut report = run_discovery(&mut gpu, &cfg);
    normalize_report(&mut report, has_l3);
    (report, device_cfg)
}

fn assert_measured_size(report: &Report, kind: CacheKind, expected: u64) {
    let e = report
        .element(kind)
        .unwrap_or_else(|| panic!("{kind:?} row missing"));
    match &e.size {
        Attribute::Measured { value, confidence } => {
            assert_eq!(*value, expected, "{kind:?} size");
            assert!(*confidence > 0.5, "{kind:?} size confidence {confidence}");
        }
        other => panic!("{kind:?} size not measured: {other:?}"),
    }
}

fn assert_latency_close(report: &Report, kind: CacheKind, expected: u32) {
    let e = report.element(kind).unwrap();
    let lat = e.load_latency.value().expect("latency measured").mean;
    assert!(
        (lat - expected as f64).abs() < 5.0,
        "{kind:?} latency {lat} vs {expected}"
    );
}

#[test]
fn t1000_full_discovery_recovers_ground_truth() {
    let (report, cfg) = discover(presets::t1000(), DiscoveryConfig::fast());

    // Compute info (API + lookup table).
    assert_eq!(report.compute.num_sms, 14);
    assert_eq!(report.compute.cores_per_sm, 64);
    assert_eq!(report.compute.warp_size, 32);

    // Sizes: benchmarked ones exact, API ones passed through.
    for kind in [
        CacheKind::L1,
        CacheKind::Texture,
        CacheKind::Readonly,
        CacheKind::ConstL1,
        CacheKind::ConstL15,
    ] {
        assert_measured_size(&report, kind, cfg.cache(kind).unwrap().size);
    }
    assert_eq!(
        report.element(CacheKind::L2).unwrap().size,
        Attribute::FromApi { value: 1024 * 1024 }
    );
    assert_eq!(
        report.element(CacheKind::SharedMemory).unwrap().size,
        Attribute::FromApi { value: 32 * 1024 }
    );

    // Latencies.
    for (kind, lat) in [
        (CacheKind::L1, 32),
        (CacheKind::L2, 188),
        (CacheKind::ConstL1, 27),
        (CacheKind::ConstL15, 92),
        (CacheKind::SharedMemory, 22),
        (CacheKind::DeviceMemory, 470),
    ] {
        assert_latency_close(&report, kind, lat);
    }

    // Discrete geometry.
    let l1 = report.element(CacheKind::L1).unwrap();
    assert_eq!(l1.cache_line_bytes.value(), Some(&128));
    assert_eq!(l1.fetch_granularity_bytes.value(), Some(&32));
    let l2 = report.element(CacheKind::L2).unwrap();
    assert_eq!(l2.cache_line_bytes.value(), Some(&64));
    assert_eq!(l2.fetch_granularity_bytes.value(), Some(&32));
    assert_eq!(l2.amount.value().map(|a| a.count), Some(1));

    // Unified L1/TEX/RO; constant separate.
    match &l1.shared_with {
        Attribute::Measured { value, .. } => match value {
            mt4g::core::report::SharingReport::Spaces(s) => {
                assert_eq!(s, &vec![CacheKind::Texture, CacheKind::Readonly]);
            }
            other => panic!("unexpected sharing {other:?}"),
        },
        other => panic!("sharing not measured: {other:?}"),
    }
}

#[test]
fn mi210_full_discovery_recovers_ground_truth() {
    let (report, cfg) = discover(
        presets::mi210(),
        DiscoveryConfig {
            cu_window: 4,
            ..DiscoveryConfig::fast()
        },
    );

    assert_eq!(report.compute.num_sms, 104);
    assert_eq!(report.compute.warp_size, 64);
    let ids = report
        .compute
        .cu_physical_ids
        .as_ref()
        .expect("AMD exposes CU ids");
    assert_eq!(ids.len(), 104);

    assert_measured_size(&report, CacheKind::VL1, 16 * 1024);
    assert_measured_size(&report, CacheKind::SL1D, 16 * 1024);
    assert_eq!(
        report.element(CacheKind::L2).unwrap().size,
        Attribute::FromApi {
            value: 8 * 1024 * 1024
        }
    );
    assert_eq!(
        report.element(CacheKind::L2).unwrap().cache_line_bytes,
        Attribute::FromApi { value: 128 }
    );

    for (kind, lat) in [
        (CacheKind::VL1, 125),
        (CacheKind::SL1D, 50),
        (CacheKind::L2, 310),
        (CacheKind::Lds, 55),
        (CacheKind::DeviceMemory, 748),
    ] {
        assert_latency_close(&report, kind, lat);
    }

    // sL1d CU partners match the planted enablement layout.
    let layout = cfg.cu_layout.as_ref().unwrap();
    match &report.element(CacheKind::SL1D).unwrap().shared_with {
        Attribute::Measured { value, .. } => match value {
            mt4g::core::report::SharingReport::CuPartners(partners) => {
                assert_eq!(partners.len(), 104);
                for (cu, found) in partners.iter().enumerate() {
                    let truth: Vec<u32> = layout
                        .sl1d_partners(cu)
                        .into_iter()
                        .map(|x| x as u32)
                        .collect();
                    assert_eq!(found, &truth, "CU {cu}");
                }
                assert!(partners.iter().any(|p| p.is_empty()), "exclusive CUs exist");
                assert!(partners.iter().any(|p| !p.is_empty()), "paired CUs exist");
            }
            other => panic!("unexpected sharing {other:?}"),
        },
        other => panic!("sharing not measured: {other:?}"),
    }

    // L2 fetch granularity benchmarked even though size/line come from APIs.
    assert_eq!(
        report
            .element(CacheKind::L2)
            .unwrap()
            .fetch_granularity_bytes
            .value(),
        Some(&64)
    );
}

#[test]
fn p6000_quirks_produce_no_results_not_wrong_results() {
    let (report, _) = discover(
        presets::p6000(),
        DiscoveryConfig {
            measure_bandwidth: false,
            ..DiscoveryConfig::fast()
        },
    );
    // L1 amount: unable to schedule on the last warp (paper Sec. V).
    assert!(matches!(
        report.element(CacheKind::L1).unwrap().amount,
        Attribute::Unavailable { .. }
    ));
    // L1 <-> Constant L1 sharing is flaky on Pascal: reported without
    // confidence.
    assert!(matches!(
        report.element(CacheKind::ConstL1).unwrap().shared_with,
        Attribute::Unavailable { .. }
    ));
    // Everything else still works: the Texture amount is fine.
    assert!(report
        .element(CacheKind::Texture)
        .unwrap()
        .amount
        .is_available());
}

#[test]
fn report_json_round_trip_of_a_real_run() {
    let (report, _) = discover(
        presets::t1000(),
        DiscoveryConfig {
            only: Some(vec![CacheKind::ConstL1, CacheKind::DeviceMemory]),
            measure_bandwidth: true,
            ..DiscoveryConfig::fast()
        },
    );
    let json = mt4g::core::report::to_json_pretty(&report).unwrap();
    let parsed = mt4g::core::report::from_json(&json).unwrap();
    assert_eq!(parsed, report);
    let csv = mt4g::core::report::to_csv(&report);
    assert!(csv.lines().count() > 5);
    let md = mt4g::core::report::to_markdown(&report);
    assert!(md.contains("Const L1"));
}

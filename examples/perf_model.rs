//! Performance-model example (paper Sec. VI-A): feed MT4G-discovered
//! parameters into the Hong–Kim CWP/MWP model and classify kernels as
//! memory- or compute-bound across the memory hierarchy.
//!
//! ```text
//! cargo run --release --example perf_model [PRESET]
//! ```

use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::model::hongkim::{evaluate, AppParams, GpuParams};
use mt4g::model::Roofline;
use mt4g::sim::presets;
use mt4g::sim::CacheKind;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "H100-80".into());
    let mut gpu = presets::by_name(&name).expect("known preset");
    println!("building the performance model for {} ...", gpu.config.name);
    let report = run_discovery(&mut gpu, &DiscoveryConfig::fast());

    // --- Roofline from MT4G bandwidths.
    let roofline = Roofline::from_report(&report);
    println!(
        "\nroofline: peak {:.0} GFLOP/s; ceilings:",
        roofline.peak_gflops
    );
    for c in &roofline.ceilings {
        println!(
            "  {:<11} {:>8.0} GiB/s  ridge at {:.1} FLOP/B",
            c.level.label(),
            c.bandwidth_gibs,
            c.ridge_point
        );
    }

    // --- Hong–Kim across hierarchy levels.
    let app = AppParams {
        comp_cycles: 800.0,
        mem_insts: 24.0,
        active_warps_per_sm: 32.0,
        total_warps_per_sm: 640.0,
    };
    println!("\nHong–Kim for a stencil-like kernel (comp 800 cyc, 24 mem insts, 32 warps):");
    for level in [CacheKind::L2, CacheKind::DeviceMemory] {
        let Some(params) = GpuParams::from_report(&report, level) else {
            continue;
        };
        let out = evaluate(&params, &app);
        println!(
            "  working set in {:<11} CWP {:>5.1}  MWP {:>5.1}  {:?}  est. {:>11.0} cycles",
            level.label(),
            out.cwp,
            out.mwp,
            out.bound,
            out.estimated_cycles
        );
    }
    println!("\nkeeping the working set L2-resident pays off exactly when the DRAM\nvariant is memory-bound and the L2 variant is not.");
}

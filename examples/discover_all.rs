//! Runs MT4G discovery on all ten validation GPUs (paper Table II), in
//! parallel, and validates every discovered attribute against the planted
//! ground truth — the whole Section V validation in one command.
//!
//! ```text
//! cargo run --release --example discover_all
//! ```

use mt4g::core::report::{Attribute, Report};
use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::sim::device::{CacheKind, DeviceConfig};
use mt4g::sim::presets;
use rayon::prelude::*;

/// Checks discovered attributes against the device's planted ground truth;
/// returns (checked, mismatches, notes).
fn validate(report: &Report, cfg: &DeviceConfig) -> (u32, u32, Vec<String>) {
    let mut checked = 0;
    let mut mismatches = 0;
    let mut notes = Vec::new();
    for m in &report.memory {
        let spec = cfg.cache(m.kind);
        if let (Some(spec), Attribute::Measured { value, .. }) = (spec, &m.size) {
            checked += 1;
            if *value != spec.size {
                mismatches += 1;
                notes.push(format!(
                    "{}: size {} vs planted {}",
                    m.kind.label(),
                    value,
                    spec.size
                ));
            }
        }
        if let (Some(spec), Attribute::Measured { value, .. }) = (spec, &m.cache_line_bytes) {
            checked += 1;
            if *value != spec.line_size {
                mismatches += 1;
                notes.push(format!(
                    "{}: line {} vs {}",
                    m.kind.label(),
                    value,
                    spec.line_size
                ));
            }
        }
        if let (Some(spec), Attribute::Measured { value, .. }) = (spec, &m.fetch_granularity_bytes)
        {
            checked += 1;
            if *value != spec.fetch_granularity {
                mismatches += 1;
                notes.push(format!(
                    "{}: fetch granularity {} vs {}",
                    m.kind.label(),
                    value,
                    spec.fetch_granularity
                ));
            }
        }
        if let Attribute::Measured { value, .. } = &m.load_latency {
            let truth = match m.kind {
                CacheKind::SharedMemory | CacheKind::Lds => Some(cfg.scratchpad.load_latency),
                CacheKind::DeviceMemory => Some(cfg.dram.load_latency),
                k => cfg.cache(k).map(|s| s.load_latency),
            };
            if let Some(truth) = truth {
                checked += 1;
                if (value.mean - truth as f64).abs() > 5.0 {
                    mismatches += 1;
                    notes.push(format!(
                        "{}: latency {:.1} vs {}",
                        m.kind.label(),
                        value.mean,
                        truth
                    ));
                }
            }
        }
    }
    (checked, mismatches, notes)
}

fn main() {
    let results: Vec<_> = presets::all()
        .into_par_iter()
        .map(|mut gpu| {
            let cfg = gpu.config.clone();
            // One discovery unit thread per run: this example already
            // fans out across the ten GPUs, so the suite-level `--jobs`
            // parallelism would only oversubscribe the cores.
            let dcfg = DiscoveryConfig {
                cu_window: 4,
                jobs: 1,
                ..DiscoveryConfig::thorough()
            };
            let report = run_discovery(&mut gpu, &dcfg);
            let (checked, mismatches, notes) = validate(&report, &cfg);
            (cfg.name, report.runtime, checked, mismatches, notes)
        })
        .collect();

    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>11}",
        "GPU", "#bench", "checked", "mismatch", "sim-cycles"
    );
    let mut total_mismatch = 0;
    for (name, rt, checked, mismatches, notes) in &results {
        println!(
            "{:<22} {:>8} {:>8} {:>9} {:>11}",
            name, rt.benchmarks_run, checked, mismatches, rt.gpu_cycles
        );
        for n in notes {
            println!("    ! {n}");
        }
        total_mismatch += mismatches;
    }
    println!(
        "\n{}",
        if total_mismatch == 0 {
            "all discovered attributes match the planted ground truth across all ten GPUs"
        } else {
            "some attributes deviate — see notes above"
        }
    );
}

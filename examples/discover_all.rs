//! Runs MT4G discovery on every registry preset (the ten Table II GPUs
//! plus the Blackwell, RDNA and hostile-family extensions), in parallel,
//! and validates every discovered attribute against the planted ground
//! truth — the whole Section V validation in one command.
//!
//! The same check gates CI as the `validation_matrix` integration test;
//! this example keeps the human-readable summary table.
//!
//! ```text
//! cargo run --release --example discover_all
//! ```

use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::core::validate::validate_against;
use mt4g::sim::presets;
use rayon::prelude::*;

fn main() {
    let results: Vec<_> = presets::all()
        .into_par_iter()
        .map(|mut gpu| {
            let cfg = gpu.config.clone();
            // One discovery unit thread per run: this example already
            // fans out across the ten GPUs, so the suite-level `--jobs`
            // parallelism would only oversubscribe the cores.
            let dcfg = DiscoveryConfig {
                cu_window: 4,
                jobs: 1,
                ..DiscoveryConfig::thorough()
            };
            let report = run_discovery(&mut gpu, &dcfg);
            let v = validate_against(&report, &cfg);
            (cfg.name, report.runtime, v)
        })
        .collect();

    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>11}",
        "GPU", "#bench", "checked", "mismatch", "sim-cycles"
    );
    let mut total_mismatch = 0;
    for (name, rt, v) in &results {
        println!(
            "{:<22} {:>8} {:>8} {:>9} {:>11}",
            name, rt.benchmarks_run, v.checked, v.mismatches, rt.gpu_cycles
        );
        for n in &v.notes {
            println!("    ! {n}");
        }
        total_mismatch += v.mismatches;
    }
    println!(
        "\n{}",
        if total_mismatch == 0 {
            "all discovered attributes match the planted ground truth across the registry"
        } else {
            "some attributes deviate — see notes above"
        }
    );
}

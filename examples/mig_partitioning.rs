//! Dynamic-topology example (paper Sec. VI-C): combine one static MT4G
//! report with dynamic MIG partitioning queries, sys-sage style, and show
//! how the capacity a kernel can rely on changes — including the paper's
//! punchline that `4g.20gb` looks identical to the full GPU from one SM.
//!
//! ```text
//! cargo run --release --example mig_partitioning
//! ```

use mt4g::core::suite::{run_discovery, DiscoveryConfig};
use mt4g::model::GpuTopology;
use mt4g::sim::bandwidth::single_sm_stream_ns_per_byte;
use mt4g::sim::gpu::Gpu;
use mt4g::sim::mig::{mig_view, MigProfile};
use mt4g::sim::presets;

fn main() {
    let mut gpu = presets::a100();
    println!("static discovery on {} ...", gpu.config.name);
    let report = run_discovery(&mut gpu, &DiscoveryConfig::fast());
    let full_cfg = presets::a100().config;

    println!("\nper-MIG-instance view (sys-sage = static MT4G + dynamic nvml):");
    println!(
        "{:>9} {:>6} {:>13} {:>13} {:>16}",
        "profile", "SMs", "visible L2", "memory", "ns/B @ 16 MiB"
    );
    for profile in MigProfile::A100_ALL {
        let mut topo = GpuTopology::from_report(&report);
        if profile.name != "full" {
            topo.apply_mig(&profile);
        }
        let view = mig_view(&full_cfg, &profile);
        let mut mig_gpu = Gpu::new(view.clone());
        let ns_b = single_sm_stream_ns_per_byte(&mut mig_gpu, 16 << 20);
        println!(
            "{:>9} {:>6} {:>10} MiB {:>10} GiB {:>16.4}",
            profile.name,
            view.chip.num_sms,
            topo.visible_l2_bytes().unwrap_or(0) >> 20,
            view.dram.size >> 30,
            ns_b,
        );
    }
    println!(
        "\na 16 MiB working set streams at L2 speed on every instance whose\n\
         visible L2 is at least 20 MiB — including the full GPU, whose 40 MB\n\
         L2 is really 2 x 20 MB segments (MT4G's L2 Amount attribute)."
    );
}

//! Quickstart: discover the topology of one GPU and print the report.
//!
//! ```text
//! cargo run --release --example quickstart [PRESET]
//! ```
//!
//! Defaults to the T1000 (smallest caches — fastest discovery).

use mt4g::core::report;
use mt4g::core::suite::{normalize_report, run_discovery, DiscoveryConfig};
use mt4g::sim::presets;
use mt4g::sim::CacheKind;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "T1000".into());
    let mut gpu = presets::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown preset '{name}'; available:\n  {}",
            presets::Registry::global().known_names()
        );
        std::process::exit(2);
    });

    println!("discovering {} ...", gpu.config.name);
    let has_l3 = gpu.config.cache(CacheKind::L3).is_some();
    let mut rep = run_discovery(&mut gpu, &DiscoveryConfig::fast());
    normalize_report(&mut rep, has_l3);

    // Human-readable view:
    println!("{}", report::to_markdown(&rep));

    // Machine-readable view (what downstream tools consume):
    let json = report::to_json_pretty(&rep).expect("serialises");
    println!(
        "JSON report: {} bytes (use `mt4g -j` to write it to a file)",
        json.len()
    );

    // Programmatic access:
    if let Some(l1) = rep
        .memory
        .iter()
        .find(|m| matches!(m.kind, CacheKind::L1 | CacheKind::VL1))
    {
        if let Some(size) = l1.size.value() {
            println!(
                "first-level data cache: {} ({}, confidence {:.2})",
                report::format_bytes(*size),
                l1.kind.label(),
                l1.size.confidence()
            );
        }
    }
}

//! Offline vendored mini-rayon.
//!
//! Exposes rayon's `prelude` entry points (`into_par_iter`, `par_iter`)
//! backed by `std::thread` scoped parallelism: the input is split into one
//! chunk per available core, each chunk is mapped on its own thread, and
//! results are returned in order. Only the `map(..).collect()` shape MT4G
//! uses is implemented; other adaptors can be added as needed.

use std::num::NonZeroUsize;

/// A "parallel iterator" over an owned list of items. Adaptors are lazy;
/// [`ParIter::collect`] runs the mapped pipeline across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of [`ParIter::map`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps every item (in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items unchanged.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map across threads and collects results in input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.items.len().max(1));
        let f = &self.f;
        if threads <= 1 {
            return self.items.into_iter().map(f).collect();
        }
        let chunk_size = self.items.len().div_ceil(threads);
        // Consume the items into per-thread chunks, preserving order.
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut current = Vec::with_capacity(chunk_size);
        for item in self.items {
            current.push(item);
            if current.len() == chunk_size {
                chunks.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            chunks.push(current);
        }
        let mut mapped: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for handle in handles {
                mapped.push(handle.join().expect("mini-rayon worker panicked"));
            }
        });
        mapped.into_iter().flatten().collect()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration (`par_iter`) for slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// rayon's prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3];
        let sum: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3, 4]);
    }
}

//! Offline vendored mini-rayon.
//!
//! Exposes the rayon entry points MT4G uses, backed by `std::thread`
//! scoped parallelism:
//!
//! * [`prelude`] — `into_par_iter` / `par_iter` with the
//!   `map(..).collect()` shape. Work is distributed over an atomic work
//!   queue (one index at a time), so heterogeneous item costs load-balance
//!   across workers; results are always collected in input order.
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — `num_threads` control with
//!   rayon's `pool.install(|| ...)` idiom. The limit applies to every
//!   `collect` that runs inside the installed closure (the discovery
//!   executor's `--jobs N`).
//! * [`scope`] — rayon-style scoped spawning for callers that need raw
//!   tasks instead of a parallel iterator.
//!
//! Only the APIs in use are implemented; other adaptors can be added as
//! needed.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count limit installed by [`ThreadPool::install`] on the
    /// calling thread; `0` means "use all available cores".
    static POOL_LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads a `collect` started on this thread would
/// use for an arbitrarily large input: the installed pool limit, or the
/// machine's available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    let limit = POOL_LIMIT.with(Cell::get);
    if limit != 0 {
        return limit;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`] (the subset of rayon's builder MT4G
/// needs: `num_threads`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (all available cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `num_threads` workers; `0` restores the default.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in the shim; the `Result` mirrors
    /// rayon's signature so call sites stay swap-compatible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`] — never produced by the
/// shim, present for signature parity with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mini-rayon thread pool construction cannot fail")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle carrying a thread-count limit. Unlike real rayon there are no
/// persistent workers; the limit is applied to the scoped threads each
/// `collect` spawns while `install` is on the stack.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread limit installed on the current
    /// thread (restored on exit, including on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_LIMIT.with(|l| l.set(self.0));
            }
        }
        let _restore = Restore(POOL_LIMIT.with(|l| l.replace(self.num_threads)));
        f()
    }

    /// The effective worker count of this pool (`num_threads`, or the
    /// available parallelism when unlimited).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// A rayon-style scope: tasks spawned on it may borrow from the enclosing
/// stack frame and are all joined before [`scope`] returns.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on its own scoped thread. The closure receives the scope
    /// again so tasks can spawn further tasks, like real rayon.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let copy = *self;
        self.scope.spawn(move || f(&copy));
    }
}

/// Creates a scope for spawning borrowing tasks; returns once every
/// spawned task has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { scope: s }))
}

/// A "parallel iterator" over an owned list of items. Adaptors are lazy;
/// [`ParIter::collect`] runs the mapped pipeline across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of [`ParIter::map`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps every item (in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items unchanged.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map across threads and collects results in input order.
    ///
    /// Items are handed out through an atomic work queue, so expensive
    /// items don't serialise behind a static chunking decision. The number
    /// of workers is the innermost [`ThreadPool::install`] limit, else the
    /// available parallelism, capped by the item count.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        let len = self.items.len();
        let threads = current_num_threads().min(len.max(1));
        let f = &self.f;
        if threads <= 1 {
            return self.items.into_iter().map(f).collect();
        }
        // Each item sits in its own slot; workers claim the next index and
        // take the item out. A Mutex per slot is negligible next to the
        // work each item represents.
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, U)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= len {
                                break;
                            }
                            let item = slots[i]
                                .lock()
                                .expect("mini-rayon slot poisoned")
                                .take()
                                .expect("mini-rayon item claimed twice");
                            local.push((i, f(item)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                per_worker.push(handle.join().expect("mini-rayon worker panicked"));
            }
        });
        let mut indexed: Vec<(usize, U)> = per_worker.into_iter().flatten().collect();
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, u)| u).collect()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iteration (`par_iter`) for slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// rayon's prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3];
        let sum: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3, 4]);
    }

    #[test]
    fn install_caps_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let max_seen = Mutex::new(0usize);
        let live = AtomicUsize::new(0);
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let v: Vec<u32> = (0..64).collect();
            let _: Vec<u32> = v
                .into_par_iter()
                .map(|x| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    {
                        let mut m = max_seen.lock().unwrap();
                        *m = (*m).max(now);
                    }
                    // Widen the overlap window without touching the
                    // clock (vendored shims must stay `std::time`-free —
                    // the `vendor-purity` lint): a yield burst keeps the
                    // slot occupied long enough for another worker to
                    // run the concurrent branch.
                    for _ in 0..64 {
                        std::thread::yield_now();
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                    x
                })
                .collect();
        });
        assert!(*max_seen.lock().unwrap() <= 2, "limit not respected");
    }

    #[test]
    fn install_restores_limit_after_exit() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn scope_joins_borrowing_tasks() {
        let results = Mutex::new(Vec::new());
        let results_ref = &results;
        scope(|s| {
            for i in 0..8 {
                s.spawn(move |_| {
                    results_ref.lock().unwrap().push(i);
                });
            }
        });
        let mut got = results.into_inner().unwrap();
        got.sort();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }
}

//! Offline vendored mini-rand.
//!
//! Provides the subset of rand 0.8's API that the MT4G workspace uses:
//! [`RngCore`], [`Rng`] (with `gen_range` over half-open and inclusive
//! ranges, `gen_bool`, and `gen` for a few primitives), and
//! [`SeedableRng`] with a `seed_from_u64` using SplitMix64 seed
//! expansion. Deterministic and stable within this repository, but NOT
//! stream-compatible with the real rand crate (rand_core expands seeds
//! differently and `gen_range` uses rejection-corrected sampling) — any
//! golden value derived from a seeded stream changes if these shims are
//! ever swapped for crates.io rand. The concrete generator lives in the
//! sibling vendored `rand_chacha` crate.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a supported primitive type over its full range
    /// (`f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    /// Stable within this repository; not stream-compatible with
    /// rand_core's expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 expansion (stable here; not rand_core-compatible).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that `gen` can produce.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty: $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
                   i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64);

/// Marker for types `gen_range` can sample.
pub trait SampleUniform: Sized {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply range reduction.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// rand's prelude-style re-exports.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so high bits vary too.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&z));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

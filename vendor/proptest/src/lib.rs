//! Offline vendored mini-proptest.
//!
//! Implements the slice of proptest's API the MT4G property tests use:
//! the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! range and tuple strategies, `prop_map`, `collection::vec`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and [`ProptestConfig`].
//!
//! Cases are sampled from a ChaCha8 stream seeded from the test's name, so
//! every run of a given test explores the same inputs — deterministic CI
//! with no persistence files. Failing cases report the case number; there
//! is no shrinking.

use rand_chacha::ChaCha8Rng;

pub use rand::Rng as _;
pub use rand::SeedableRng as _;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one sampled case body.
pub type CaseResult = Result<(), TestCaseError>;

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs don't satisfy a precondition.
    Reject,
}

/// Builds the deterministic RNG for a named test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name gives a stable per-test stream.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(hash)
}

pub mod strategy {
    //! Strategy trait and combinators.

    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                        stringify!($left), stringify!($right), left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares deterministic property tests.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$first_meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $(#[$first_meta])* fn $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: gave up after {} attempts ({} cases accepted) — \
                             prop_assume! rejects too many inputs",
                            stringify!($name), attempts, accepted
                        );
                    }
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    // The closure is load-bearing: `prop_assert!` and
                    // `prop_assume!` use `return` to abort one case.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::CaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (attempt {}):\n{}",
                                stringify!($name), accepted, attempts, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = (u32, u32)> {
        (1u32..100).prop_map(|x| (x, 2 * x))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_maps((a, b) in doubled()) {
            prop_assert_eq!(b, 2 * a);
        }

        #[test]
        fn vectors_respect_length(v in collection::vec(0u64..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_honoured(_x in 0u32..10) {
            // Runs three cases; nothing to assert beyond not panicking.
        }
    }

    // No #[test] on the generated fn: it is invoked (and expected to
    // panic) from the should_panic test below.
    proptest! {
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_context() {
        always_fails();
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let xs: Vec<u64> = (0..8).map(|_| rand::RngCore::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| rand::RngCore::next_u64(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}

//! Offline vendored ChaCha random number generators.
//!
//! A genuine ChaCha block function (RFC 8439 quarter-round over a
//! 16-word state, 64-bit block counter) driving the vendored mini-rand
//! traits. Deterministic, portable, `Clone`-able — everything MT4G's
//! reproducible noise model needs.

use rand::{RngCore, SeedableRng};

/// A ChaCha core with `R` double-rounds and a 64-entry output buffer
/// (one 16-word block at a time, refilled on demand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const R: usize> {
    /// Key words 4..12 and nonce words 14..16 of the initial state.
    key: [u32; 8],
    stream: u64,
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

/// ChaCha with 8 rounds (4 double-rounds) — the generator MT4G seeds
/// everywhere for reproducible noise.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..R {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Sets the stream number (distinct streams from the same seed are
    /// independent).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16; // force refill
    }

    /// The current stream number.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            stream: 0,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha20_rfc8439_keystream() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00 — our nonce layout is
        // only 8 bytes (words 14/15), so instead verify the all-zero
        // key/nonce/counter=0 ChaCha20 keystream first word, a widely
        // published value (76 b8 e0 ad ...).
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        assert_eq!(first.to_le_bytes(), [0x76, 0xb8, 0xe0, 0xad]);
    }

    #[test]
    fn uniform_range_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut histogram = [0u32; 10];
        for _ in 0..10_000 {
            histogram[rng.gen_range(0usize..10)] += 1;
        }
        for &count in &histogram {
            assert!(
                (800..1200).contains(&count),
                "skewed histogram: {histogram:?}"
            );
        }
    }
}

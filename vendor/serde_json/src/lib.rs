//! Offline vendored mini-serde_json.
//!
//! Implements `to_string`, `to_string_pretty` and `from_str` over the
//! vendored `serde::Value` tree, with serde_json-compatible behaviour for
//! the constructs MT4G uses: insertion-ordered objects, `null` for
//! non-finite floats, shortest-round-trip float formatting, and full JSON
//! string escaping.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parses a JSON string into a raw [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    parse_value(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json writes non-finite floats as null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Match serde_json: whole floats keep a ".0" suffix.
        out.push_str(&format!("{x:.1}"));
    } else {
        // Rust's Display for f64 is the shortest round-trip representation.
        out.push_str(&x.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Container nesting depth, bounded by [`MAX_DEPTH`] so adversarial
    /// input (e.g. a request line of 100k `[`s fed to a long-running
    /// daemon) fails with a parse error instead of overflowing the stack
    /// of this recursive-descent parser.
    depth: usize,
}

/// Maximum container nesting the parser accepts. Real workspace payloads
/// nest a handful of levels; 128 leaves two orders of magnitude of head
/// room while keeping worst-case stack use far below thread stack sizes.
const MAX_DEPTH: usize = 128;

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::new(format!(
                "recursion depth limit ({MAX_DEPTH}) exceeded at offset {}",
                self.pos
            )));
        }
        self.depth += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let v = self.object_body();
        self.depth -= 1;
        v
    }

    fn object_body(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        let v = self.array_body();
        self.depth -= 1;
        v
    }

    fn array_body(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let low = self.hex4()?;
                                let c =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_limit_rejects_nesting_bombs_without_overflowing() {
        // One past the limit fails with a parse error (not a stack
        // overflow), in array, object, and mixed form.
        let deep = "[".repeat(MAX_DEPTH + 1);
        let err = from_str_value(&deep).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
        let deep = "{\"k\":".repeat(MAX_DEPTH + 1);
        let err = from_str_value(&deep).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
        let huge = "[".repeat(500_000);
        assert!(from_str_value(&huge).is_err());
        // At the limit, parsing succeeds.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str_value(&ok).is_ok());
    }

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn pretty_objects_are_indented() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        let back = from_str_value(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let s = "héllo \u{1F600} \"quoted\"\nline";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }
}

//! Offline vendored mini-serde derive macros.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; this crate hand-parses the item's token stream. It supports
//! the shapes the MT4G workspace actually uses:
//!
//! * structs with named fields (optionally generic),
//! * enums with unit, newtype, tuple and struct variants (optionally
//!   generic),
//! * `#[serde(tag = "...")]` internally-tagged enums,
//! * `#[serde(default)]` fields (missing key → `Default::default()`),
//! * `#[serde(skip)]` fields (never serialized; deserialization always
//!   uses `Default::default()` — host-only data like wall-clock timings
//!   that must not enter canonical bytes),
//! * `#[serde(skip_serializing_if = "path")]` fields (the key is omitted
//!   from the serialized object when `path(&field)` is true — used to add
//!   report sections without changing the bytes of reports that lack
//!   them),
//! * `Option<T>` fields tolerate a missing key (deserialize to `None`).
//!
//! Generated code targets the `serde::{Serialize, Deserialize, Value,
//! DeError}` items of the sibling vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Type-parameter names, e.g. `["T"]` for `Attribute<T>`.
    generics: Vec<String>,
    /// `#[serde(tag = "...")]` on the item, if any.
    tag: Option<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    is_option: bool,
    has_default: bool,
    /// `#[serde(skip)]`: never serialized, deserialized to default.
    skip: bool,
    /// `#[serde(skip_serializing_if = "path")]`: serialization omits the
    /// key when `path(&self.field)` holds.
    skip_serializing_if: Option<String>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    /// One unnamed payload field.
    Newtype,
    /// `n` unnamed payload fields.
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("mini-serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes leading attributes; returns the merged `#[serde(...)]`
    /// arguments.
    fn parse_attrs(&mut self) -> SerdeArgs {
        let mut merged = SerdeArgs::default();
        while self.peek_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("mini-serde derive: malformed attribute: {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let Some(TokenTree::Ident(name)) = inner.first() {
                if name.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let parsed = parse_serde_args(args.stream());
                        merged.has_default |= parsed.has_default;
                        merged.skip |= parsed.skip;
                        if parsed.tag.is_some() {
                            merged.tag = parsed.tag;
                        }
                        if parsed.skip_serializing_if.is_some() {
                            merged.skip_serializing_if = parsed.skip_serializing_if;
                        }
                    }
                }
            }
        }
        merged
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

/// The supported `#[serde(...)]` arguments of one attribute set.
#[derive(Default)]
struct SerdeArgs {
    has_default: bool,
    skip: bool,
    tag: Option<String>,
    skip_serializing_if: Option<String>,
}

/// Parses the inside of `#[serde(...)]`.
fn parse_serde_args(stream: TokenStream) -> SerdeArgs {
    let mut args = SerdeArgs::default();
    let mut it = stream.into_iter().peekable();
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(name) = &tt {
            // `name = "..."` helper shared by the valued attributes.
            let string_value = |it: &mut std::iter::Peekable<
                proc_macro::token_stream::IntoIter,
            >|
             -> Option<String> {
                if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    it.next();
                    if let Some(TokenTree::Literal(lit)) = it.next() {
                        return Some(unquote(&lit.to_string()));
                    }
                }
                None
            };
            match name.to_string().as_str() {
                "default" => args.has_default = true,
                "skip" => args.skip = true,
                "tag" => args.tag = string_value(&mut it),
                "skip_serializing_if" => args.skip_serializing_if = string_value(&mut it),
                other => panic!("mini-serde derive: unsupported serde attribute `{other}`"),
            }
        }
    }
    args
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parses `<...>` generics after the item name, returning type-param names.
fn parse_generics(cursor: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    if !cursor.peek_punct('<') {
        return params;
    }
    cursor.next();
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match cursor.next() {
            Some(TokenTree::Punct(p)) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expect_param = true,
                ':' if depth == 1 => expect_param = false,
                '\'' => expect_param = false, // lifetimes unsupported as params
                _ => {}
            },
            Some(TokenTree::Ident(i)) => {
                if expect_param && depth == 1 {
                    params.push(i.to_string());
                    expect_param = false;
                }
            }
            Some(_) => {}
            None => panic!("mini-serde derive: unterminated generics"),
        }
    }
    params
}

/// Parses named fields from the inside of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.parse_attrs();
        cursor.skip_vis();
        let name = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("mini-serde derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        // Consume the type, tracking angle-bracket depth to find the
        // field-separating comma.
        let mut is_option = false;
        let mut first = true;
        let mut depth = 0usize;
        while let Some(tt) = cursor.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    cursor.next();
                    break;
                }
                TokenTree::Ident(i) if first => {
                    is_option = i.to_string() == "Option";
                }
                _ => {}
            }
            first = false;
            cursor.next();
        }
        fields.push(Field {
            name,
            is_option,
            has_default: attrs.has_default,
            skip: attrs.skip,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-variant payload.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut any = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => any = true,
        }
    }
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.parse_attrs();
        let name = cursor.expect_ident("variant name");
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cursor.next();
                match n {
                    0 => Shape::Unit,
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // Skip to the next variant (past discriminants and the comma).
        while let Some(tt) = cursor.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                cursor.next();
                break;
            }
            cursor.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let mut cursor = Cursor::new(stream);
    let tag = cursor.parse_attrs().tag;
    cursor.skip_vis();
    let keyword = cursor.expect_ident("`struct` or `enum`");
    let name = cursor.expect_ident("item name");
    let generics = parse_generics(&mut cursor);
    // Skip a `where` clause if present.
    while let Some(tt) = cursor.peek() {
        if matches!(tt, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace) {
            break;
        }
        if matches!(tt, TokenTree::Punct(p) if p.as_char() == ';') {
            panic!("mini-serde derive: unit/tuple structs are not supported ({name})");
        }
        cursor.next();
    }
    let body = match cursor.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        other => panic!("mini-serde derive: expected item body for {name}, found {other:?}"),
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("mini-serde derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        generics,
        tag,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then re-parsed)
// ---------------------------------------------------------------------------

/// `impl<T: serde::Serialize> serde::Serialize for Name<T>`-style header.
fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", input.name)
    } else {
        let bounds: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let args = input.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{args}> ",
            bounds.join(", "),
            input.name
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(fields) => {
            body.push_str("let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n");
            for f in fields {
                if f.skip {
                    continue;
                }
                let push = format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                );
                match &f.skip_serializing_if {
                    Some(path) => {
                        body.push_str(&format!("if !{path}(&self.{n}) {{ {push} }}\n", n = f.name))
                    }
                    None => body.push_str(&push),
                }
            }
            body.push_str("::serde::Value::Object(__fields)\n");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match (&v.shape, &input.tag) {
                    (Shape::Unit, None) => body.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    (Shape::Unit, Some(tag)) => body.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string()))]),\n"
                    )),
                    (Shape::Newtype, None) => body.push_str(&format!(
                        "{name}::{vname}(__x) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::serialize(__x))]),\n"
                    )),
                    (Shape::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    (Shape::Struct(fields), tag) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        if let Some(tag) = tag {
                            pushes.push_str(&format!(
                                "__fields.push((\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            let push = format!(
                                "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize({n})));\n",
                                n = f.name
                            );
                            match &f.skip_serializing_if {
                                Some(path) => pushes.push_str(&format!(
                                    "if !{path}({n}) {{ {push} }}\n",
                                    n = f.name
                                )),
                                None => pushes.push_str(&push),
                            }
                        }
                        let obj = match tag {
                            Some(_) => "::serde::Value::Object(__fields)".to_string(),
                            None => format!(
                                "::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(__fields))])"
                            ),
                        };
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}{obj} }}\n",
                            binds.join(", ")
                        ));
                    }
                    (shape, Some(_)) => {
                        let _ = shape;
                        panic!(
                            "mini-serde derive: internally-tagged payload variant {name}::{vname} must use named fields"
                        )
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "{header}{{ fn serialize(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(input, "Serialize")
    )
}

/// Generates the expression rebuilding one named field set from object `__v`
/// (used for both structs and struct variants).
fn gen_field_builders(fields: &[Field], context: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        if f.skip {
            out.push_str(&format!("{n}: ::std::default::Default::default(),\n"));
            continue;
        }
        let missing = if f.has_default {
            "::std::default::Default::default()".to_string()
        } else if f.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{n}\", \"{context}\"))"
            )
        };
        out.push_str(&format!(
            "{n}: match __v.get(\"{n}\") {{ Some(__fv) => ::serde::Deserialize::deserialize(__fv)?, None => {missing}, }},\n"
        ));
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(fields) => {
            body.push_str(&format!(
                "if __v.as_object().is_none() {{ return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}\")); }}\n"
            ));
            body.push_str(&format!(
                "::std::result::Result::Ok({name} {{\n{}\n}})",
                gen_field_builders(fields, name)
            ));
        }
        Kind::Enum(variants) => match &input.tag {
            Some(tag) => {
                body.push_str(&format!(
                    "let __tag = match __v.get(\"{tag}\") {{\n\
                     Some(::serde::Value::Str(s)) => s.as_str(),\n\
                     _ => return ::std::result::Result::Err(::serde::DeError::expected(\"object with `{tag}` tag\", \"{name}\")),\n\
                     }};\n\
                     match __tag {{\n"
                ));
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => body.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        Shape::Struct(fields) => body.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{\n{}\n}}),\n",
                            gen_field_builders(fields, name)
                        )),
                        _ => panic!(
                            "mini-serde derive: internally-tagged payload variant {name}::{vname} must use named fields"
                        ),
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown {name} variant `{{__other}}`\"))),\n}}"
                ));
            }
            None => {
                // Externally tagged: a bare string for unit variants, a
                // single-key object for payload variants.
                body.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
                for v in variants {
                    if matches!(v.shape, Shape::Unit) {
                        let vname = &v.name;
                        body.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n"
                ));
                body.push_str("::serde::Value::Object(__fields) if __fields.len() == 1 => {\nlet (__key, __payload) = &__fields[0];\nmatch __key.as_str() {\n");
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {}
                        Shape::Newtype => body.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__payload)?)),\n"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!(
                                    "::serde::Deserialize::deserialize(&__items[{i}])?"
                                ))
                                .collect();
                            body.push_str(&format!(
                                "\"{vname}\" => match __payload {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {n} => ::std::result::Result::Ok({name}::{vname}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"array of {n}\", \"{name}::{vname}\")),\n\
                                 }},\n",
                                items.join(", ")
                            ));
                        }
                        Shape::Struct(fields) => body.push_str(&format!(
                            "\"{vname}\" => {{ let __v = __payload; if __v.as_object().is_none() {{ return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}::{vname}\")); }} ::std::result::Result::Ok({name}::{vname} {{\n{}\n}}) }},\n",
                            gen_field_builders(fields, name)
                        )),
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n"
                ));
                body.push_str(&format!(
                    "_ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\")),\n}}"
                ));
            }
        },
    }
    format!(
        "{header}{{ fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        header = impl_header(input, "Deserialize")
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("mini-serde derive: generated Serialize impl failed to parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("mini-serde derive: generated Deserialize impl failed to parse")
}

//! Offline vendored mini-criterion.
//!
//! Implements the slice of criterion 0.5's API that the MT4G benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`) with a
//! simple wall-clock harness:
//!
//! * under `cargo bench` (cargo passes `--bench`), each benchmark is warmed
//!   up and measured for the configured times and a mean/min/max summary is
//!   printed;
//! * under `cargo test` (no `--bench` flag), each benchmark body runs once
//!   in "test mode", exactly like real criterion, so benches stay cheap but
//!   exercised.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing warm-up/measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.full_label(&id.into_benchmark_id());
        self.run(&label, |bencher| f(bencher));
        self
    }

    /// Benches a closure parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.full_label(&id.into_benchmark_id());
        self.run(&label, |bencher| f(bencher, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn full_label(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        }
    }

    fn run(&mut self, label: &str, mut body: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: if self.criterion.bench_mode {
                Mode::Measure {
                    warm_up: self.warm_up,
                    measurement: self.measurement,
                    sample_size: self.sample_size,
                }
            } else {
                Mode::Test
            },
            samples: Vec::new(),
            iters_done: 0,
        };
        body(&mut bencher);
        if self.criterion.bench_mode {
            report(
                label,
                &bencher.samples,
                bencher.iters_done,
                self.throughput.as_ref(),
            );
        } else {
            println!("test-mode bench {label}: ok");
        }
    }
}

enum Mode {
    /// `cargo test`: run the body once, no timing.
    Test,
    /// `cargo bench`: warm up, then sample.
    Measure {
        warm_up: Duration,
        measurement: Duration,
        sample_size: usize,
    },
}

/// Passed to the benchmark body; `iter` runs and times the routine.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    iters_done: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly according to the harness mode, timing each
    /// call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.iters_done += 1;
            }
            Mode::Measure {
                warm_up,
                measurement,
                sample_size,
            } => {
                let warm_start = Instant::now();
                while warm_start.elapsed() < warm_up {
                    black_box(routine());
                }
                let measure_start = Instant::now();
                while self.samples.len() < sample_size && measure_start.elapsed() < measurement {
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                    self.iters_done += 1;
                }
                // Always record at least one sample.
                if self.samples.is_empty() {
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                    self.iters_done += 1;
                }
            }
        }
    }
}

fn report(label: &str, samples: &[Duration], iters: u64, throughput: Option<&Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let rate = throughput.map(|t| t.rate_label(mean)).unwrap_or_default();
    println!(
        "{label:<48} mean {:>12?}  min {:>12?}  max {:>12?}  ({iters} iters){rate}",
        mean, min, max
    );
}

/// Per-iteration work declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn rate_label(&self, mean: Duration) -> String {
        let secs = mean.as_secs_f64().max(1e-12);
        match self {
            Throughput::Elements(n) => format!("  {:.3} Melem/s", *n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("  {:.3} MiB/s", *n as f64 / secs / (1 << 20) as f64),
        }
    }
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] (strings or explicit ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench-target `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

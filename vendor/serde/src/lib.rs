//! Offline vendored mini-serde.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate provides the (small) subset of serde's API that the MT4G
//! workspace actually uses, with the same surface syntax:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (including
//!   generics, `#[serde(tag = "...")]` internally-tagged enums and
//!   `#[serde(default)]` fields),
//! * the `Serialize` / `Deserialize` traits,
//! * blanket implementations for the primitive / std types the workspace
//!   serializes.
//!
//! Unlike real serde's zero-copy visitor architecture, this implementation
//! round-trips through an owned [`Value`] tree. That is entirely sufficient
//! for MT4G's report files (a few KiB each) and keeps the hand-written
//! derive macro auditable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON-like value tree — the interchange format between the
/// `Serialize` / `Deserialize` traits and the `serde_json` front end.
///
/// Object keys keep insertion order (serde_json's `preserve_order`
/// behaviour) so report files are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign or fraction).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object representation, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable description of the value's JSON type.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {context}"))
    }

    /// Builds a "missing field" error.
    pub fn missing_field(field: &str, context: &str) -> DeError {
        DeError(format!(
            "missing field `{field}` while deserializing {context}"
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n: i64 = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| DeError::expected("integer", stringify!($t)))?
                    }
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            // serde_json serializes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Deserializes by leaking the parsed string. Real serde borrows from
    /// the input instead; this vendored build round-trips through an owned
    /// `Value`, so a `&'static str` target (used for tiny interned names
    /// like MIG profile labels) has nothing to borrow from. The leak is a
    /// few bytes per parsed profile and only on the deserialize path.
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", "&str")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let result = ($(
                            $name::deserialize(
                                it.next().ok_or_else(|| DeError::expected("longer array", "tuple"))?,
                            )?,
                        )+);
                        Ok(result)
                    }
                    _ => Err(DeError::expected("array", "tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "HashMap")),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

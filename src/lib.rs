//! # MT4G — Memory Topology for GPUs (Rust reproduction)
//!
//! This is a full reproduction of *"MT4G: A Tool for Reliable Auto-Discovery
//! of NVIDIA and AMD GPU Compute and Memory Topologies"* (SC Workshops '25),
//! built on a simulated GPU substrate so that every microbenchmark and the
//! complete statistical evaluation pipeline can run — and be validated
//! against planted ground truth — on any machine, without GPU hardware.
//!
//! The workspace is organised as five library crates, four of them
//! re-exported here (the fifth, `mt4g_bench`, holds the paper's
//! table/figure harnesses):
//!
//! * [`stats`] — Kolmogorov–Smirnov testing (Eq. 1), change-point
//!   detection, the geometric reduction of Eq. (2), outlier handling.
//! * [`sim`] — the GPU simulator: sectored set-associative caches, memory
//!   spaces, a mini kernel ISA with a cycle clock, vendor API emulation, and
//!   presets for the ten GPUs of the paper's Table II.
//! * [`core`] — the MT4G tool itself: the p-chase engine, all benchmark
//!   families of Section IV, the plan/execute/merge discovery suite
//!   (`--jobs` / `--shard` / `mt4g merge`), and the report model.
//! * [`model`] — the Section VI use cases: the Hong-Kim CWP/MWP performance
//!   model, a roofline model, a sys-sage-style dynamic topology with MIG, and
//!   GPUscout-style bottleneck analysis.
//!
//! The end-to-end pipeline (substrate → p-chase → Eq. 2 reduction → Eq. 1
//! K-S change-point detection → report) and the parallel discovery
//! architecture are documented in `ARCHITECTURE.md` at the repository
//! root.
//!
//! ## Quickstart
//!
//! ```
//! use mt4g::sim::presets;
//! use mt4g::core::suite::{run_discovery, DiscoveryConfig};
//! use mt4g::sim::CacheKind;
//!
//! // Keep the doctest fast: one element only.
//! let mut gpu = presets::t1000();
//! let cfg = DiscoveryConfig {
//!     only: Some(vec![CacheKind::ConstL1]),
//!     measure_bandwidth: false,
//!     ..DiscoveryConfig::fast()
//! };
//! let report = run_discovery(&mut gpu, &cfg);
//! assert_eq!(report.device.name, "T1000");
//! let cl1 = report.element(CacheKind::ConstL1).unwrap();
//! assert_eq!(cl1.size.value(), Some(&2048));
//! ```

#![deny(missing_docs)]

pub use mt4g_core as core;
pub use mt4g_model as model;
pub use mt4g_sim as sim;
pub use mt4g_stats as stats;
